/**
 * @file
 * Behavioural tests for the memory system: latencies, MSHR behaviour,
 * and the policy mechanics of every §5 architecture, on hand-crafted
 * access sequences against small caches.
 */

#include <gtest/gtest.h>

#include "hierarchy/memsys.hh"

namespace ccm
{
namespace
{

/** Small, fast-to-warm machine for unit testing. */
MemSysConfig
smallConfig()
{
    MemSysConfig cfg;
    cfg.l1Bytes = 1024;          // 16 sets
    cfg.l2Bytes = 64 * 1024;
    cfg.bufEntries = 4;
    return cfg;
}

constexpr Addr setStride = 1024;   // L1-size alias distance

TEST(MemSys, L1HitLatencyIsOneCycle)
{
    MemorySystem m(smallConfig());
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);             // cold miss
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 500);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.ready, 501u);
    EXPECT_EQ(m.stats().l1Hits, 1u);
    EXPECT_EQ(m.stats().l1Misses, 1u);
}

TEST(MemSys, ColdMissGoesToMemory)
{
    MemSysConfig cfg = smallConfig();
    MemorySystem m(cfg);
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    EXPECT_FALSE(r.l1Hit);
    // bank at 0, fetch starts at 1, bus grants at 1, + memLatency.
    EXPECT_EQ(r.ready, 1 + cfg.memLatency);
    EXPECT_EQ(m.stats().l2Misses, 1u);
}

TEST(MemSys, L2HitIsFast)
{
    MemSysConfig cfg = smallConfig();
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);         // memory fetch, fills L2+L1
    // Evict 0x40 from L1 with an alias...
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);
    // ...then re-access it: L1 miss, L2 hit.
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.ready, 401 + cfg.l2Latency);
    EXPECT_EQ(m.stats().l2Hits, 1u);
}

TEST(MemSys, SameLineAccessDuringFetchHitsOnce)
{
    // Fill-at-access approximation: a second access to an in-flight
    // line is an L1 hit (its retirement is serialized behind the
    // first load by the in-order ROB anyway), and no second fetch is
    // issued.
    MemSysConfig cfg = smallConfig();
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    AccessResult second = m.access(ByteAddr{0}, ByteAddr{0x48}, false, 3);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(m.stats().l2Misses, 1u);
    EXPECT_EQ(m.stats().l2Hits, 0u);
}

TEST(MemSys, DemandHitOnInFlightPrefetchWaitsForData)
{
    // The MSHR-tracked completion of a prefetch bounds a demand hit
    // on its buffer entry: data can't be consumed before it arrives.
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    MemorySystem m(cfg);
    AccessResult miss = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);  // prefetch 0x80
    // Touch the prefetched line immediately: buffer hit, but the
    // data is still in flight.
    AccessResult hit = m.access(ByteAddr{0}, ByteAddr{0x80}, false, 2);
    EXPECT_TRUE(hit.bufHit);
    EXPECT_GE(hit.ready, miss.ready - 10);  // ~prefetch completion
    EXPECT_GT(hit.ready, 10u);              // not a 1-cycle hit
}

TEST(MemSys, MshrFullStallsDemandMisses)
{
    MemSysConfig cfg = smallConfig();
    cfg.mshrs = 1;
    MemorySystem m(cfg);
    AccessResult a = m.access(ByteAddr{0}, ByteAddr{0x040}, false, 0);
    AccessResult b = m.access(ByteAddr{0}, ByteAddr{0x080}, false, 1);
    // The second miss waits for the first fetch to complete.
    EXPECT_GE(b.ready, a.ready + cfg.memLatency);
    EXPECT_GT(m.stats().mshrStallCycles, 0u);
}

TEST(MemSys, BankContentionDelaysSameBank)
{
    MemSysConfig cfg = smallConfig();
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);        // warm the line
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 500);      // bank busy at 500
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 500);  // same bank/cycle
    EXPECT_EQ(r.ready, 502u);           // pushed one cycle
}

TEST(MemSys, DifferentBanksDontConflict)
{
    MemSysConfig cfg = smallConfig();
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x80}, false, 0);        // different bank
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 500);
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x80}, false, 500);
    EXPECT_EQ(r.ready, 501u);
}

TEST(MemSys, DirtyEvictionWritesBack)
{
    MemorySystem m(smallConfig());
    m.access(ByteAddr{0}, ByteAddr{0x40}, true, 0);                 // dirty fill
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);  // evicts dirty line
    EXPECT_EQ(m.stats().writebacks, 1u);
}

TEST(MemSys, CleanEvictionDoesNot)
{
    MemorySystem m(smallConfig());
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);
    EXPECT_EQ(m.stats().writebacks, 0u);
}

TEST(MemSys, MissClassificationCountsMatch)
{
    MemorySystem m(smallConfig());
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);                     // capacity (cold)
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);       // capacity
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);                   // conflict!
    const MemStats &st = m.stats();
    EXPECT_EQ(st.conflictMisses, 1u);
    EXPECT_EQ(st.capacityMisses, 2u);
    EXPECT_EQ(st.conflictMisses + st.capacityMisses, st.l1Misses);
}

// ---- victim cache (§5.1) -------------------------------------------

TEST(Victim, TraditionalHitSwaps)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);  // evicts 0x40 -> buf
    EXPECT_EQ(m.stats().victimFills, 1u);

    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);
    EXPECT_TRUE(r.bufHit);
    EXPECT_LE(r.ready, 403u);                   // buffer-fast
    EXPECT_EQ(m.stats().bufHitVictim, 1u);
    EXPECT_EQ(m.stats().swaps, 1u);
    // After the swap, 0x40 is an L1 hit and the alias is in the
    // buffer.
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600).l1Hit);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 800).bufHit);
}

TEST(Victim, NoSwapPolicyLeavesLineInBuffer)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    cfg.victim.filterSwaps = true;
    cfg.victim.filter = ConflictFilter::Or;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);  // conflict miss
    EXPECT_TRUE(r.bufHit);
    EXPECT_EQ(m.stats().swaps, 0u);
    // The line is still in the buffer, not the cache.
    EXPECT_FALSE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600).l1Hit);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600).bufHit);
}

TEST(Victim, FillFilterSkipsCapacityEvictions)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    cfg.victim.filterFills = true;
    cfg.victim.filter = ConflictFilter::Or;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    // Cold alias miss: classified capacity, evicted line's bit clear
    // -> or-filter says don't fill.
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);
    EXPECT_EQ(m.stats().victimFills, 0u);
    EXPECT_FALSE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400).bufHit);
}

TEST(Victim, FillFilterAllowsConflictEvictions)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    cfg.victim.filterFills = true;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);   // capacity: no fill
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);               // conflict: fills
    EXPECT_EQ(m.stats().victimFills, 1u);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 600).bufHit);
}

TEST(Victim, StoreHitInBufferDirtiesEntry)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    cfg.victim.filterSwaps = true;
    cfg.bufEntries = 1;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);   // 0x40 -> buffer
    m.access(ByteAddr{0}, ByteAddr{0x40}, true, 400);                // store, buffer hit
    // Displace the buffer entry: its dirtiness forces a writeback.
    m.access(ByteAddr{0}, ByteAddr{0x40 + 2 * setStride}, false, 600);
    m.access(ByteAddr{0}, ByteAddr{0x40 + 3 * setStride}, false, 800);
    EXPECT_GE(m.stats().writebacks, 1u);
}

// ---- next-line prefetcher (§5.2) -----------------------------------

TEST(Prefetch, MissTriggersNextLinePrefetch)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    EXPECT_EQ(m.stats().prefIssued, 1u);
    // The next line is a buffer hit, which promotes and streams on.
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x80}, false, 500);
    EXPECT_TRUE(r.bufHit);
    EXPECT_EQ(m.stats().bufHitPrefetch, 1u);
    EXPECT_EQ(m.stats().prefUseful, 1u);
    EXPECT_EQ(m.stats().prefIssued, 2u);   // 0xC0 now prefetched
    // Promoted line is now an L1 hit.
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x80}, false, 900).l1Hit);
}

TEST(Prefetch, NoPrefetchWhenNextLineCached)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x80}, false, 0);       // brings 0x80; prefetches 0xC0
    Count issued = m.stats().prefIssued;
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 300);     // next line 0x80 already in L1
    EXPECT_EQ(m.stats().prefIssued, issued);
}

TEST(Prefetch, DroppedWhenMshrsFull)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    cfg.mshrs = 1;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);   // demand takes the only MSHR
    EXPECT_EQ(m.stats().prefDropped, 1u);
    EXPECT_EQ(m.stats().prefIssued, 0u);
}

TEST(Prefetch, FilterSuppressesConflictMissPrefetch)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    cfg.prefetch.filtered = true;
    cfg.prefetch.filter = ConflictFilter::Out;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);                   // capacity: pf
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 300);     // capacity: pf
    Count issued = m.stats().prefIssued;
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600);                 // conflict: no pf
    EXPECT_EQ(m.stats().prefIssued, issued);
    EXPECT_EQ(m.stats().prefFiltered, 1u);
}

TEST(Prefetch, WastedPrefetchCounted)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PrefetchBuffer;
    cfg.bufEntries = 1;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x040}, false, 0);     // prefetches 0x080 into 1-entry
    m.access(ByteAddr{0}, ByteAddr{0x400}, false, 300);   // prefetches 0x440, evicting it
    EXPECT_EQ(m.stats().prefWasted, 1u);
}

// ---- cache exclusion (§5.3) ----------------------------------------

TEST(Exclude, CapacityMissesBypassToBuffer)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::Capacity;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);     // capacity -> buffer, not L1
    EXPECT_EQ(m.stats().excluded, 1u);
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x48}, false, 300);
    EXPECT_TRUE(r.bufHit);
    EXPECT_EQ(m.stats().bufHitBypass, 1u);
    EXPECT_FALSE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600).l1Hit);
}

TEST(Exclude, MctInsertFixEnablesLaterConflict)
{
    // §5.3: the bypassed line's tag goes into the MCT so its next
    // miss (once it ages out of the buffer) classifies as conflict
    // and gets cached normally.
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::Capacity;
    cfg.bufEntries = 1;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);          // excluded; MCT learns tag
    m.access(ByteAddr{0}, ByteAddr{0x400}, false, 300);       // displaces it from buffer
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600);        // conflict -> cached!
    EXPECT_EQ(m.stats().conflictMisses, 1u);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 900).l1Hit);
}

TEST(Exclude, WithoutInsertFixStaysCapacity)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::Capacity;
    cfg.exclude.mctInsertFix = false;
    cfg.bufEntries = 1;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x400}, false, 300);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600);        // still capacity: excluded
    EXPECT_EQ(m.stats().conflictMisses, 0u);
    EXPECT_EQ(m.stats().excluded, 3u);
}

TEST(Exclude, ConflictPolicyExcludesConflicts)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::Conflict;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);                  // capacity: cached
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 300);    // capacity: cached
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600);                // conflict: bypass
    EXPECT_EQ(m.stats().excluded, 1u);
    EXPECT_FALSE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 900).l1Hit);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 900).bufHit);
}

TEST(Exclude, TysonBypassesAlwaysMissingPc)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::TysonPc;
    MemorySystem m(cfg);
    // One pc streams through memory (always misses); another hammers
    // one hot line.
    Cycle t = 0;
    for (int i = 0; i < 16; ++i) {
        m.access(ByteAddr{0x400},
                 ByteAddr{Addr(0x100000) + i * 0x400}, false, t);
        m.access(ByteAddr{0x500}, ByteAddr{0x40}, false, t + 5);
        t += 10;
    }
    // The streaming pc's later misses were excluded.
    EXPECT_GT(m.stats().excluded, 0u);
    // The hot pc's line stayed cached.
    EXPECT_TRUE(m.access(ByteAddr{0x500}, ByteAddr{0x40}, false, t).l1Hit);
}

TEST(Exclude, MatBypassesColdRegionAgainstHotVictim)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::BypassBuffer;
    cfg.exclude.algo = ExcludeAlgo::Mat;
    MemorySystem m(cfg);
    // Make region of 0x40 hot.
    for (int i = 0; i < 50; ++i)
        m.access(ByteAddr{0}, ByteAddr{0x40}, false, i * 10);
    // A cold alias misses: the MAT protects the hot resident.
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 1000);
    EXPECT_EQ(m.stats().excluded, 1u);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 1500).l1Hit);
}

// ---- adaptive miss buffer (§5.5) -----------------------------------

TEST(Amb, VictPrefSplitsByMissClass)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::Amb;
    cfg.amb.victimConflicts = true;
    cfg.amb.prefetchCapacity = true;
    MemorySystem m(cfg);

    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);    // capacity: prefetch 0x80
    EXPECT_EQ(m.stats().prefIssued, 1u);
    EXPECT_EQ(m.stats().victimFills, 0u);

    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 300);  // capacity: no fill
    EXPECT_EQ(m.stats().victimFills, 0u);
    EXPECT_EQ(m.stats().prefIssued, 2u);   // capacity: prefetches too

    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 600);  // conflict: evictee to buffer
    EXPECT_EQ(m.stats().victimFills, 1u);
    // Conflict misses don't prefetch.
    EXPECT_EQ(m.stats().prefIssued, 2u);

    // The victim entry serves later without a swap.
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 900);
    EXPECT_TRUE(r.bufHit);
    EXPECT_EQ(m.stats().swaps, 0u);
}

TEST(Amb, PrefExclTransitionsPrefetchHitToBypass)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::Amb;
    cfg.amb.prefetchCapacity = true;
    cfg.amb.excludeCapacity = true;
    MemorySystem m(cfg);

    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);     // capacity: excluded + prefetch
    EXPECT_EQ(m.stats().excluded, 1u);
    EXPECT_EQ(m.stats().prefIssued, 1u);

    // Hit on the prefetched 0x80: stays in the buffer as a bypass
    // entry (§5.5 transition), so it's a buffer hit again later.
    m.access(ByteAddr{0}, ByteAddr{0x80}, false, 500);
    EXPECT_EQ(m.stats().bufHitPrefetch, 1u);
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x80}, false, 800);
    EXPECT_TRUE(r.bufHit);
    EXPECT_EQ(m.stats().bufHitBypass, 1u);
    EXPECT_FALSE(r.l1Hit);
}

TEST(Amb, VicPreExcCombinesAll)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::Amb;
    cfg.amb.victimConflicts = true;
    cfg.amb.prefetchCapacity = true;
    cfg.amb.excludeCapacity = true;
    MemorySystem m(cfg);

    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);      // capacity: exclude + prefetch
    EXPECT_EQ(m.stats().excluded, 1u);
    EXPECT_EQ(m.stats().prefIssued, 1u);
    // 0x40 displaced from the buffer eventually misses as conflict
    // (insert fix) and is cached; its eviction victim-fills.
    m.access(ByteAddr{0}, ByteAddr{0x400}, false, 300);
    m.access(ByteAddr{0}, ByteAddr{0x440}, false, 400);
    m.access(ByteAddr{0}, ByteAddr{0x480}, false, 500);
    m.access(ByteAddr{0}, ByteAddr{0x4C0}, false, 600);   // 4-entry buffer fully churned
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 900);    // conflict: cached in L1
    EXPECT_GE(m.stats().conflictMisses, 1u);
    EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 1200).l1Hit);
}

// ---- pseudo-associative mode (§5.4) --------------------------------

TEST(PseudoMode, SecondaryHitCostsExtraCycle)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PseudoAssoc;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);   // demotes 0x40
    AccessResult r = m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.ready, 400 + cfg.l1HitLatency +
                           cfg.pseudoSecondaryPenalty);
    EXPECT_EQ(m.stats().pseudoSecondaryHits, 1u);
    EXPECT_EQ(m.stats().swaps, 1u);
}

TEST(PseudoMode, AliasedPairCoexists)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::PseudoAssoc;
    MemorySystem m(cfg);
    m.access(ByteAddr{0}, ByteAddr{0x40}, false, 0);
    m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 200);
    Count misses = m.stats().l1Misses;
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(m.access(ByteAddr{0}, ByteAddr{0x40}, false, 400 + i * 50).l1Hit);
        EXPECT_TRUE(
            m.access(ByteAddr{0}, ByteAddr{0x40 + setStride}, false, 420 + i * 50).l1Hit);
    }
    EXPECT_EQ(m.stats().l1Misses, misses);
}

// ---- global invariants ---------------------------------------------

TEST(MemSys, AccessCountsAreConsistent)
{
    MemSysConfig cfg = smallConfig();
    cfg.mode = AssistMode::VictimCache;
    MemorySystem m(cfg);
    Cycle t = 0;
    for (Addr a = 0; a < 64; ++a) {
        m.access(ByteAddr{0}, ByteAddr{(a * 0x39C0) & 0xFFFF},
                 a % 3 == 0, t);
        t += 7;
    }
    const MemStats &st = m.stats();
    EXPECT_EQ(st.accesses, 64u);
    EXPECT_EQ(st.loads + st.stores, st.accesses);
    EXPECT_EQ(st.l1Hits + st.l1Misses, st.accesses);
    EXPECT_LE(st.bufHits(), st.l1Misses);
    EXPECT_EQ(st.conflictMisses + st.capacityMisses, st.l1Misses);
    EXPECT_NEAR(st.l1HitRatePct() + st.bufHitRatePct() +
                    st.missRatePct(),
                100.0, 1e-9);
}

} // namespace
} // namespace ccm
