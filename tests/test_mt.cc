/**
 * @file
 * Unit tests for trace interleaving and the shared-cache conflict
 * study (§5.6 multithreading application).
 */

#include <gtest/gtest.h>

#include "mt/interleave.hh"
#include "mt/shared_cache.hh"
#include "trace/vector_trace.hh"

namespace ccm
{
namespace
{

VectorTrace
loadsAt(Addr base, int n, Addr stride = 64)
{
    VectorTrace t({}, {});
    for (int i = 0; i < n; ++i)
        t.pushLoad(base + Addr(i) * stride);
    return t;
}

TEST(Interleave, RoundRobinGranularity)
{
    VectorTrace a = loadsAt(0x1000, 4);
    VectorTrace b = loadsAt(0x2000, 4);
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 2);
    t.reset();

    MemRecord r;
    std::vector<unsigned> producers;
    std::vector<Addr> addrs;
    while (t.next(r)) {
        producers.push_back(t.lastThread());
        addrs.push_back(r.addr);
    }
    ASSERT_EQ(producers.size(), 8u);
    std::vector<unsigned> expect = {0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_EQ(producers, expect);
    EXPECT_EQ(addrs[0], 0x1000u);
    EXPECT_EQ(addrs[2], 0x2000u);
}

TEST(Interleave, UnevenLengthsDrainFully)
{
    VectorTrace a = loadsAt(0x1000, 10);
    VectorTrace b = loadsAt(0x2000, 2);
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 3);
    t.reset();
    MemRecord r;
    std::size_t n = 0;
    while (t.next(r))
        ++n;
    EXPECT_EQ(n, 12u);
}

TEST(Interleave, ResetReplays)
{
    VectorTrace a = loadsAt(0x1000, 3);
    std::vector<TraceSource *> kids = {&a};
    InterleavedTrace t(kids, 1);
    t.reset();
    MemRecord r;
    std::size_t n1 = 0;
    while (t.next(r))
        ++n1;
    t.reset();
    std::size_t n2 = 0;
    while (t.next(r))
        ++n2;
    EXPECT_EQ(n1, n2);
}

TEST(Interleave, NameJoinsChildren)
{
    VectorTrace a = loadsAt(0, 1);
    a.setName("foo");
    VectorTrace b = loadsAt(0, 1);
    b.setName("bar");
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 1);
    EXPECT_EQ(t.name(), "foo+bar");
    EXPECT_EQ(t.threads(), 2u);
}

TEST(InterleaveDeath, BadParams)
{
    std::vector<TraceSource *> none;
    EXPECT_DEATH(InterleavedTrace(none, 1), "at least one");
    VectorTrace a = loadsAt(0, 1);
    std::vector<TraceSource *> one = {&a};
    EXPECT_DEATH(InterleavedTrace(one, 0), "granularity");
}

// ---- shared-cache study ---------------------------------------------

TEST(SharedCache, DisjointThreadsHaveNoCrossConflicts)
{
    // Threads touching disjoint sets never interfere.
    VectorTrace a({}, {});
    VectorTrace b({}, {});
    for (int i = 0; i < 500; ++i) {
        a.pushLoad(0x00000 + (i % 4) * 64);    // sets 0-3
        b.pushLoad(0x10000 + (i % 4) * 64 + 0x400);  // sets 16-19
    }
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 4);
    SharedCacheStudy study(16 * 1024, 1, 64);
    SharedCacheResult res = study.run(t);
    EXPECT_EQ(res.crossThreadConflicts, 0u);
    EXPECT_EQ(res.perThread.size(), 2u);
    EXPECT_EQ(res.perThread[0].references, 500u);
}

TEST(SharedCache, AliasedThreadsInterfere)
{
    // Both threads hammer the same set with different tags: heavy
    // cross-thread conflict misses.
    VectorTrace a({}, {});
    VectorTrace b({}, {});
    for (int i = 0; i < 500; ++i) {
        a.pushLoad(0x00040);            // set 1, tag X
        b.pushLoad(0x00040 + 16 * 1024);  // set 1, tag Y
    }
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 1);      // fine-grain interleave
    SharedCacheStudy study(16 * 1024, 1, 64);
    SharedCacheResult res = study.run(t);
    EXPECT_GT(res.crossThreadConflicts, 400u);
    EXPECT_GT(res.coScheduleBadness(), 0.4);
    EXPECT_GT(res.perThread[0].crossThreadConflicts, 100u);
    EXPECT_GT(res.perThread[1].crossThreadConflicts, 100u);
}

TEST(SharedCache, SelfConflictIsNotCrossThread)
{
    // One thread ping-pongs privately: conflicts yes, cross no.
    VectorTrace a({}, {});
    for (int i = 0; i < 300; ++i) {
        a.pushLoad(0x00040);
        a.pushLoad(0x00040 + 16 * 1024);
    }
    std::vector<TraceSource *> kids = {&a};
    InterleavedTrace t(kids, 4);
    SharedCacheStudy study(16 * 1024, 1, 64);
    SharedCacheResult res = study.run(t);
    EXPECT_GT(res.perThread[0].conflictMisses, 400u);
    EXPECT_EQ(res.crossThreadConflicts, 0u);
}

TEST(SharedCache, TwoWaySharedCacheAbsorbsPairConflict)
{
    VectorTrace a({}, {});
    VectorTrace b({}, {});
    for (int i = 0; i < 300; ++i) {
        a.pushLoad(0x00040);
        b.pushLoad(0x00040 + 16 * 1024);
    }
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 1);
    SharedCacheStudy study(16 * 1024, 2, 64);
    SharedCacheResult res = study.run(t);
    // 2-way set holds both threads' lines: almost no misses.
    EXPECT_LT(res.missRate(), 0.02);
}

TEST(SharedCache, PerThreadTalliesSumToTotals)
{
    VectorTrace a = loadsAt(0x0000, 400, 96);
    VectorTrace b = loadsAt(0x40000, 300, 160);
    std::vector<TraceSource *> kids = {&a, &b};
    InterleavedTrace t(kids, 4);
    SharedCacheStudy study;
    SharedCacheResult res = study.run(t);
    Count refs = 0, misses = 0, cross = 0;
    for (const auto &ts : res.perThread) {
        refs += ts.references;
        misses += ts.misses;
        cross += ts.crossThreadConflicts;
    }
    EXPECT_EQ(refs, res.references);
    EXPECT_EQ(misses, res.misses);
    EXPECT_EQ(cross, res.crossThreadConflicts);
}

} // namespace
} // namespace ccm
