/**
 * @file
 * Tests for the synthetic workload suite: determinism, replay,
 * length, record sanity, registry behaviour, and the structural
 * properties each generator promises (colliding bases, dependent
 * loads, hot regions).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workloads/fp_workloads.hh"
#include "workloads/int_workloads.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

constexpr std::size_t testRefs = 20000;

std::vector<MemRecord>
drain(TraceSource &src)
{
    src.reset();
    std::vector<MemRecord> out;
    MemRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

// ---- registry ------------------------------------------------------

TEST(Registry, HasSixteenWorkloads)
{
    EXPECT_EQ(workloadSuite().size(), 16u);
    EXPECT_EQ(workloadNames().size(), 16u);
}

TEST(Registry, EightFpEightInt)
{
    int fp = 0;
    for (const auto &s : workloadSuite())
        fp += s.floatingPoint ? 1 : 0;
    EXPECT_EQ(fp, 8);
}

TEST(Registry, MakeByNameWorks)
{
    auto wl = makeWorkload("tomcatv", 100, 1);
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), "tomcatv");
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("doom", 100, 1), nullptr);
}

TEST(Registry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &s : workloadSuite())
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate " << s.name;
}

// ---- per-workload parameterized properties -------------------------

class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<TraceSource>
    make(std::uint64_t seed = 42) const
    {
        return makeWorkload(GetParam(), testRefs, seed);
    }
};

TEST_P(WorkloadProperty, EmitsRequestedMemRefs)
{
    auto wl = make();
    auto recs = drain(*wl);
    std::size_t mem = 0;
    for (const auto &r : recs)
        mem += r.isMem() ? 1 : 0;
    EXPECT_EQ(mem, testRefs);
}

TEST_P(WorkloadProperty, DeterministicForSameSeed)
{
    auto a = make(7), b = make(7);
    auto ra = drain(*a), rb = drain(*b);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].addr, rb[i].addr) << "at record " << i;
        EXPECT_EQ(ra[i].pc, rb[i].pc);
        EXPECT_EQ(ra[i].type, rb[i].type);
    }
}

TEST_P(WorkloadProperty, ResetReplaysIdentically)
{
    auto wl = make();
    auto first = drain(*wl);
    auto second = drain(*wl);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i].addr, second[i].addr) << "record " << i;
}

TEST_P(WorkloadProperty, MemRecordsHaveAddresses)
{
    auto wl = make();
    MemRecord r;
    wl->reset();
    while (wl->next(r)) {
        if (r.isMem()) {
            EXPECT_GE(r.addr, 0x40000000u);  // inside a region
            EXPECT_NE(r.pc, 0u);
        }
    }
}

TEST_P(WorkloadProperty, MixesLoadsAndNonMem)
{
    auto wl = make();
    std::size_t loads = 0, nonmem = 0;
    MemRecord r;
    wl->reset();
    while (wl->next(r)) {
        if (r.isLoad())
            ++loads;
        else if (!r.isMem())
            ++nonmem;
    }
    EXPECT_GT(loads, 0u);
    EXPECT_GT(nonmem, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadProperty,
    ::testing::ValuesIn(workloadNames()),
    [](const auto &info) { return info.param; });

// ---- structural expectations ---------------------------------------

TEST(Tomcatv, PingArraysCollideMod16And64K)
{
    TomcatvLike wl(5000, 1);
    wl.reset();
    MemRecord r;
    // Collect ping-phase addresses (relaxation pcs are < 0x1200).
    std::vector<Addr> a0, a1;
    while (wl.next(r)) {
        if (!r.isMem())
            continue;
        if (r.pc == 0x1000)
            a0.push_back(r.addr);
        if (r.pc == 0x1004)
            a1.push_back(r.addr);
    }
    ASSERT_FALSE(a0.empty());
    ASSERT_FALSE(a1.empty());
    // Matching indices map to the same set in 16KB and 64KB caches.
    std::size_t n = std::min(a0.size(), a1.size());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ((a0[i] / 64) % 256, (a1[i] / 64) % 256);
        EXPECT_EQ((a0[i] / 64) % 1024, (a1[i] / 64) % 1024);
    }
}

TEST(Swim, StreamsAreUnitStrideAndSkewed)
{
    SwimLike wl(4000, 1);
    wl.reset();
    MemRecord r;
    Addr prev0 = 0;
    bool first = true;
    while (wl.next(r)) {
        if (!r.isMem())
            continue;
        if (r.pc == 0x2000) {   // array 0 loads
            if (!first) {
                EXPECT_EQ(r.addr - prev0, 8u);
            }
            prev0 = r.addr;
            first = false;
        }
    }
    EXPECT_FALSE(first);
}

TEST(Li, ChaseLoadsDependOnPreviousLoad)
{
    LiLike wl(3000, 1);
    wl.reset();
    MemRecord r;
    std::size_t dependent = 0, total = 0;
    while (wl.next(r)) {
        if (!r.isMem())
            continue;
        ++total;
        dependent += r.dependsOnPrevLoad ? 1 : 0;
    }
    EXPECT_GT(dependent, total / 10);  // the cons-cell chase
    EXPECT_LT(dependent, total);       // env/sweep refs are not
}

TEST(Gcc, HasDependentChainAndStores)
{
    GccLike wl(5000, 1);
    wl.reset();
    MemRecord r;
    bool saw_dep = false, saw_store = false;
    while (wl.next(r)) {
        saw_dep |= r.dependsOnPrevLoad;
        saw_store |= r.isStore();
    }
    EXPECT_TRUE(saw_dep);
    EXPECT_TRUE(saw_store);
}

TEST(Vortex, MetaAndLogCollide)
{
    VortexLike wl(5000, 1);
    wl.reset();
    MemRecord r;
    Addr meta = invalidAddr;
    while (wl.next(r)) {
        if (!r.isMem())
            continue;
        if (r.pc == 0xc000)
            meta = r.addr;
        if (r.pc == 0xc004 && meta != invalidAddr) {
            // log append directly after an index lookup: same set.
            EXPECT_EQ((r.addr / 64) % 256, (meta / 64) % 256);
        }
    }
}

TEST(Wave5, GatherStaysInGrid)
{
    Wave5Like wl(5000, 1, 1024 * 1024);
    wl.reset();
    MemRecord r;
    while (wl.next(r)) {
        if (r.isMem() && r.pc == 0x6004) {
            // Gathers land within the configured 1MB grid.
            Addr grid_lo = 0x40000000ULL + 6 * 0x04000000ULL;
            EXPECT_GE(r.addr, grid_lo);
            EXPECT_LT(r.addr, grid_lo + 2 * 1024 * 1024);
        }
    }
}

TEST(Workloads, DifferentSeedsDifferForRandomized)
{
    // Randomized generators must vary with the seed.
    for (const char *name : {"wave5", "go", "gcc", "compress",
                             "perl", "vortex"}) {
        auto a = makeWorkload(name, 2000, 1);
        auto b = makeWorkload(name, 2000, 2);
        auto ra = drain(*a), rb = drain(*b);
        std::size_t diff = 0, n = std::min(ra.size(), rb.size());
        for (std::size_t i = 0; i < n; ++i)
            diff += ra[i].addr != rb[i].addr ? 1 : 0;
        EXPECT_GT(diff, 0u) << name;
    }
}

TEST(WorkloadsDeath, ZeroRefsIsFatal)
{
    EXPECT_DEATH(SwimLike(0, 1), "mem_refs");
}

TEST(Registry, ValidateWorkloadRequest)
{
    EXPECT_TRUE(validateWorkloadRequest("gcc", 100).isOk());
    EXPECT_EQ(validateWorkloadRequest("nonesuch", 100).code(),
              ErrorCode::NotFound);
    EXPECT_EQ(validateWorkloadRequest("gcc", 0).code(),
              ErrorCode::BadConfig);
}

TEST(Registry, MakeWorkloadCheckedReturnsStatusNotDeath)
{
    auto ok = makeWorkloadChecked("gcc", 100, 1);
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(ok.value() != nullptr);
    EXPECT_EQ(ok.value()->name(), "gcc");

    auto unknown = makeWorkloadChecked("nonesuch", 100, 1);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), ErrorCode::NotFound);

    auto zero = makeWorkloadChecked("gcc", 0, 1);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().code(), ErrorCode::BadConfig);
}

} // namespace
} // namespace ccm
