/**
 * @file
 * The raw-speed core's correctness gates:
 *
 *  - runShardedClassify must produce byte-identical statistics for
 *    every shard count (the inline K=1 path is the sequential
 *    reference), including shard counts above the set count and prime
 *    counts that stripe sets unevenly;
 *  - the sharded engine must agree with the oracle-bearing
 *    classifyRun on everything both compute (references, misses, MCT
 *    conflict verdicts);
 *  - MappedTraceReader must deliver exactly the records
 *    TraceFileReader does, for both encodings, and must reject
 *    damaged files with a Status at open() (its next() has no failure
 *    path);
 *  - the delta codec must round-trip arbitrary jumps (negative
 *    deltas included) and flag overlong varints and reserved control
 *    bits as the distinct defects tracecheck maps to exit codes
 *    10/11.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "hierarchy/memstats.hh"
#include "mct/classify_run.hh"
#include "sim/sharded.hh"
#include "trace/delta.hh"
#include "trace/file_trace.hh"
#include "trace/mmap_trace.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

// ---- sharded classification --------------------------------------

/** Small geometry: 4KB direct-mapped-ish, 16 sets at assoc 4. */
ShardedClassifyConfig
smallConfig(unsigned shards, Count interval = 0)
{
    ShardedClassifyConfig cfg;
    cfg.cacheBytes = 4 * 1024;
    cfg.assoc = 4;
    cfg.lineBytes = 64;
    cfg.shards = shards;
    cfg.interval = interval;
    return cfg;
}

void
expectSameStats(const MemStats &a, const MemStats &b)
{
    MemStats::forEachField([&](const char *name, Count MemStats::*f) {
        EXPECT_EQ(a.*f, b.*f) << "counter " << name;
    });
}

void
expectSameResult(const ShardedClassifyResult &ref,
                 const ShardedClassifyResult &got)
{
    EXPECT_EQ(ref.references, got.references);
    EXPECT_EQ(ref.misses, got.misses);
    EXPECT_DOUBLE_EQ(ref.missRate, got.missRate);
    expectSameStats(ref.mem, got.mem);

    EXPECT_EQ(ref.heat.sets, got.heat.sets);
    EXPECT_EQ(ref.heat.l1Misses, got.heat.l1Misses);
    EXPECT_EQ(ref.heat.l1Evictions, got.heat.l1Evictions);
    EXPECT_EQ(ref.heat.mctLookups, got.heat.mctLookups);
    EXPECT_EQ(ref.heat.mctConflicts, got.heat.mctConflicts);

    ASSERT_EQ(ref.intervals.size(), got.intervals.size());
    for (std::size_t w = 0; w < ref.intervals.size(); ++w) {
        EXPECT_EQ(ref.intervals[w].firstRef, got.intervals[w].firstRef);
        EXPECT_EQ(ref.intervals[w].lastRef, got.intervals[w].lastRef);
        expectSameStats(ref.intervals[w].delta, got.intervals[w].delta);
    }
}

TEST(ShardedClassify, EveryShardCountMatchesSequential)
{
    auto wl = makeWorkload("gcc", 120'000, 7);
    VectorTrace trace = VectorTrace::capture(*wl);
    const MemRecord *recs = trace.records().data();
    const std::size_t n = trace.records().size();

    const ShardedClassifyResult ref =
        runShardedClassify(recs, n, smallConfig(1, 30'000));
    EXPECT_EQ(ref.references, Count{120'000});

    // 2 = even split, 7 = prime (uneven stripes), 64 = more shards
    // than the 16 sets (48 shards own nothing at all).
    for (unsigned shards : {2u, 7u, 64u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const ShardedClassifyResult got =
            runShardedClassify(recs, n, smallConfig(shards, 30'000));
        EXPECT_EQ(got.shards, shards);
        expectSameResult(ref, got);
    }
}

TEST(ShardedClassify, IntervalWindowsUseGlobalBoundaries)
{
    auto wl = makeWorkload("compress", 50'000, 3);
    VectorTrace trace = VectorTrace::capture(*wl);

    const ShardedClassifyResult res = runShardedClassify(
        trace.records().data(), trace.records().size(),
        smallConfig(4, 20'000));

    // 50k refs at a 20k interval: windows [1,20k], [20k+1,40k],
    // partial [40k+1,50k] — identical for every shard, so the merged
    // series must show exactly these boundaries.
    ASSERT_EQ(res.intervals.size(), 3u);
    EXPECT_EQ(res.intervals[0].firstRef, Count{1});
    EXPECT_EQ(res.intervals[0].lastRef, Count{20'000});
    EXPECT_EQ(res.intervals[2].firstRef, Count{40'001});
    EXPECT_EQ(res.intervals[2].lastRef, Count{50'000});

    // Sum of window deltas == final aggregates (the invariant
    // validateStatsDoc enforces on the emitted document).
    MemStats sum;
    for (const auto &s : res.intervals) {
        MemStats::forEachField(
            [&](const char *, Count MemStats::*f) {
                sum.*f += s.delta.*f;
            });
    }
    expectSameStats(res.mem, sum);
}

TEST(ShardedClassify, AgreesWithOracleBearingClassifyRun)
{
    auto wl = makeWorkload("go", 80'000, 11);
    VectorTrace trace = VectorTrace::capture(*wl);

    ClassifyConfig seq;
    seq.cacheBytes = 4 * 1024;
    seq.assoc = 4;
    seq.lineBytes = 64;
    ClassifyResult expect = classifyRun(trace, seq);

    const ShardedClassifyResult got = runShardedClassify(
        trace.records().data(), trace.records().size(),
        smallConfig(3));

    EXPECT_EQ(got.references, expect.references);
    EXPECT_EQ(got.misses, expect.misses);
    // The MCT-side verdict tallies must agree too: the scorer's
    // "called conflict" column is exactly our conflictMisses counter.
    EXPECT_EQ(got.mem.conflictMisses,
              expect.scorer.conflictAsConflict() +
                  expect.scorer.capacityAsConflict());
    EXPECT_EQ(got.mem.capacityMisses,
              got.misses - got.mem.conflictMisses);
}

TEST(ShardedClassify, ZeroShardsMeansOne)
{
    auto wl = makeWorkload("swim", 10'000, 1);
    VectorTrace trace = VectorTrace::capture(*wl);
    const ShardedClassifyResult res = runShardedClassify(
        trace.records().data(), trace.records().size(),
        smallConfig(0));
    EXPECT_EQ(res.shards, 1u);
    EXPECT_EQ(res.references, Count{10'000});
}

// ---- mapped reader vs copying reader -----------------------------

class MappedTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "ccm_mmap_" + info->name() +
               ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    void
    writeWorkload(const std::string &name, std::size_t refs,
                  TraceEncoding enc = TraceEncoding::Packed)
    {
        auto wl = makeWorkload(name, refs, 42);
        ASSERT_NE(wl, nullptr) << name;
        TraceFileWriter writer(path, enc);
        writer.writeAll(*wl);
    }

    void
    truncateTo(std::size_t bytes)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::vector<unsigned char> all;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            all.push_back(static_cast<unsigned char>(c));
        std::fclose(f);
        ASSERT_LE(bytes, all.size());
        f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (bytes > 0) {
            ASSERT_EQ(std::fwrite(all.data(), 1, bytes, f), bytes);
        }
        std::fclose(f);
    }

    std::string path;
};

void
expectSameRecords(const std::vector<MemRecord> &ref, TraceSource &got)
{
    MemRecord r;
    std::size_t i = 0;
    while (got.next(r)) {
        ASSERT_LT(i, ref.size());
        EXPECT_EQ(ref[i].pc, r.pc) << "record " << i;
        EXPECT_EQ(ref[i].addr, r.addr) << "record " << i;
        EXPECT_EQ(ref[i].type, r.type) << "record " << i;
        EXPECT_EQ(ref[i].dependsOnPrevLoad, r.dependsOnPrevLoad)
            << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, ref.size());
}

TEST_F(MappedTraceTest, MatchesFileReaderOnEveryWorkload)
{
    for (const auto &name : workloadNames()) {
        SCOPED_TRACE(name);
        writeWorkload(name, 5'000);

        auto file = TraceFileReader::open(path);
        ASSERT_TRUE(file.ok()) << file.status().toString();
        auto mapped = MappedTraceReader::open(path);
        ASSERT_TRUE(mapped.ok()) << mapped.status().toString();

        EXPECT_EQ(mapped.value()->size(), file.value()->size());
        expectSameRecords(file.value()->records(), *mapped.value());
    }
}

TEST_F(MappedTraceTest, MatchesFileReaderOnDeltaEncoding)
{
    writeWorkload("vortex", 20'000, TraceEncoding::Delta);

    auto file = TraceFileReader::open(path);
    ASSERT_TRUE(file.ok()) << file.status().toString();
    EXPECT_EQ(file.value()->readStats().encoding,
              TraceEncoding::Delta);

    auto mapped = MappedTraceReader::open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().toString();
    EXPECT_EQ(mapped.value()->encoding(), TraceEncoding::Delta);
    expectSameRecords(file.value()->records(), *mapped.value());

    // reset() must rewind the delta predictor too, not just the
    // cursor: a second pass sees the same bytes.
    mapped.value()->reset();
    expectSameRecords(file.value()->records(), *mapped.value());
}

TEST_F(MappedTraceTest, BatchesAgreeWithSingleSteps)
{
    writeWorkload("li", 8'000);
    auto file = TraceFileReader::open(path);
    ASSERT_TRUE(file.ok());
    auto mapped = MappedTraceReader::open(path);
    ASSERT_TRUE(mapped.ok());

    std::vector<MemRecord> batched;
    MemRecord buf[97]; // deliberately not a divisor of the count
    std::size_t n = 0;
    while ((n = mapped.value()->nextBatch(buf, 97)) > 0)
        batched.insert(batched.end(), buf, buf + n);

    const auto &ref = file.value()->records();
    ASSERT_EQ(batched.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].pc, batched[i].pc);
        EXPECT_EQ(ref[i].addr, batched[i].addr);
        EXPECT_EQ(ref[i].type, batched[i].type);
    }
}

TEST_F(MappedTraceTest, TruncatedFileIsRejectedAtOpen)
{
    writeWorkload("compress", 1'000);
    // Chop mid-record: 16-byte header + some records + 7 stray bytes.
    truncateTo(16 + 24 * 10 + 7);
    auto mapped = MappedTraceReader::open(path);
    EXPECT_FALSE(mapped.ok());
}

TEST_F(MappedTraceTest, CorruptBodyIsRejectedAtOpen)
{
    writeWorkload("compress", 1'000);
    // Stamp garbage over a record in the middle of the body.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16 + 24 * 50, SEEK_SET), 0);
    const unsigned char junk[24] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                    0xff, 0xff, 0xff, 0xff, 0xff,
                                    0xff, 0xff, 0xff, 0xff, 0xff,
                                    0xff, 0xff, 0xff, 0xff, 0xff,
                                    0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof junk, f), sizeof junk);
    std::fclose(f);

    auto mapped = MappedTraceReader::open(path);
    EXPECT_FALSE(mapped.ok());
}

TEST_F(MappedTraceTest, EmptyAndMissingFilesAreRejected)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    EXPECT_FALSE(MappedTraceReader::open(path).ok());
    EXPECT_FALSE(
        MappedTraceReader::open(path + ".does-not-exist").ok());
}

TEST_F(MappedTraceTest, TolerantOptionsAreUnsupported)
{
    writeWorkload("swim", 1'000);
    TraceReadOptions tolerant;
    tolerant.corruptionBudget = 4;
    auto mapped = MappedTraceReader::open(path, tolerant);
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), ErrorCode::Unsupported);
}

TEST_F(MappedTraceTest, OpenMappedOrFileFallsBackForTolerantOpts)
{
    writeWorkload("swim", 1'000);

    bool usedMmap = false;
    auto strict = openTraceMappedOrFile(path, {}, &usedMmap);
    ASSERT_TRUE(strict.ok()) << strict.status().toString();
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(usedMmap);
#endif

    TraceReadOptions tolerant;
    tolerant.tolerateTruncatedTail = true;
    tolerant.quiet = true;
    auto fallback = openTraceMappedOrFile(path, tolerant, &usedMmap);
    ASSERT_TRUE(fallback.ok()) << fallback.status().toString();
    EXPECT_FALSE(usedMmap);

    // Both lanes still deliver the same stream.
    std::vector<MemRecord> a, b;
    MemRecord r;
    while (strict.value()->next(r))
        a.push_back(r);
    while (fallback.value()->next(r))
        b.push_back(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST_F(MappedTraceTest, OpenMappedOrFileHandlesDeltaTraces)
{
    // CCMTRACD: the mapped lane decodes delta in place, and the
    // TraceFileReader fallback (tolerant options) must produce the
    // identical stream — including the mem/non-mem mix and the
    // dependent-load bits the delta control byte packs.
    writeWorkload("vortex", 10'000, TraceEncoding::Delta);

    auto ref = TraceFileReader::open(path);
    ASSERT_TRUE(ref.ok()) << ref.status().toString();
    ASSERT_EQ(ref.value()->readStats().encoding,
              TraceEncoding::Delta);

    bool usedMmap = false;
    auto strict = openTraceMappedOrFile(path, {}, &usedMmap);
    ASSERT_TRUE(strict.ok()) << strict.status().toString();
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(usedMmap);
#endif
    expectSameRecords(ref.value()->records(), *strict.value());

    TraceReadOptions tolerant;
    tolerant.tolerateTruncatedTail = true;
    tolerant.quiet = true;
    auto fallback = openTraceMappedOrFile(path, tolerant, &usedMmap);
    ASSERT_TRUE(fallback.ok()) << fallback.status().toString();
    EXPECT_FALSE(usedMmap);
    expectSameRecords(ref.value()->records(), *fallback.value());
}

// ---- delta codec --------------------------------------------------

TEST(DeltaCodec, RoundTripsNegativeAndLargeJumps)
{
    std::vector<MemRecord> recs;
    MemRecord r;
    r.type = RecordType::Load;
    r.pc = 0xffff'ffff'0000'0000ull;
    r.addr = 0x10'0000;
    recs.push_back(r);
    r.pc = 4; // a huge backwards pc delta
    r.addr = 0x0f'ffc0;
    r.type = RecordType::Store;
    recs.push_back(r);
    r.type = RecordType::NonMem;
    r.pc = 8;
    r.addr = 0;
    recs.push_back(r);
    r.type = RecordType::Load;
    r.pc = 12;
    r.addr = 0x0f'ffc0; // zero addr delta vs previous mem record
    r.dependsOnPrevLoad = true;
    recs.push_back(r);

    delta::Codec enc, dec;
    std::uint8_t buf[delta::maxRecordBytes * 8];
    std::size_t len = 0;
    for (const auto &in : recs)
        len += delta::encodeRecord(enc, in, buf + len);

    const std::uint8_t *p = buf;
    for (const auto &in : recs) {
        MemRecord out;
        std::size_t used = 0;
        ASSERT_EQ(delta::decodeRecord(dec, p, buf + len, out, used),
                  delta::DecodeStatus::Ok);
        p += used;
        EXPECT_EQ(out.pc, in.pc);
        EXPECT_EQ(out.type, in.type);
        EXPECT_EQ(out.dependsOnPrevLoad, in.dependsOnPrevLoad);
        if (in.isMem()) {
            EXPECT_EQ(out.addr, in.addr);
        }
    }
    EXPECT_EQ(p, buf + len);
}

TEST(DeltaCodec, ReservedControlBitsAreBadControlByte)
{
    delta::Codec dec;
    const std::uint8_t bytes[] = {0xf8, 0x00, 0x00};
    MemRecord out;
    std::size_t used = 7; // must be left untouched on failure
    EXPECT_EQ(delta::decodeRecord(dec, bytes, bytes + sizeof bytes,
                                  out, used),
              delta::DecodeStatus::BadControlByte);
    EXPECT_EQ(used, 7u);
}

TEST(DeltaCodec, OverlongVarintIsBadVarint)
{
    delta::Codec dec;
    // Control byte 0 (NonMem) + ten 0x80 continuation bytes: byte 10
    // exceeds the 64-bit range.
    std::uint8_t bytes[12];
    bytes[0] = 0x00;
    for (int i = 1; i <= 10; ++i)
        bytes[i] = 0x80;
    bytes[11] = 0x02;
    MemRecord out;
    std::size_t used = 0;
    EXPECT_EQ(delta::decodeRecord(dec, bytes, bytes + sizeof bytes,
                                  out, used),
              delta::DecodeStatus::BadVarint);
}

TEST(DeltaCodec, FileReaderFlagsDeltaDefects)
{
    const std::string path = ::testing::TempDir() +
                             "ccm_delta_defect.bin";
    auto wl = makeWorkload("compress", 500, 42);
    {
        TraceFileWriter writer(path, TraceEncoding::Delta);
        writer.writeAll(*wl);
    }
    // Reserved bits in the very first control byte.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16, SEEK_SET), 0);
    std::fputc(0xf8, f);
    std::fclose(f);

    TraceReadStats stats;
    EXPECT_EQ(probeTraceFile(path, &stats),
              TraceDefect::BadControlByte);

    // Delta streams cannot resync: even an unlimited corruption
    // budget must not turn this into a tolerated defect.
    std::vector<MemRecord> recs;
    TraceReadOptions opts;
    opts.corruptionBudget = ~std::size_t{0};
    opts.quiet = true;
    TraceReadStats stats2;
    EXPECT_FALSE(loadTraceFile(path, opts, recs, stats2).isOk());
    std::remove(path.c_str());
}

} // namespace
} // namespace ccm
