/**
 * @file
 * The ccm-serve streaming subsystem: frame protocol (encode, parse,
 * resync), the bounded record queue (block vs shed backpressure),
 * daemon config parsing, the per-stream pipeline's byte-identity with
 * the batch path, and the daemon end to end over real unix-domain
 * sockets — including the fault-isolation acceptance gate (N
 * concurrent streams, some fault-injected, the rest unharmed).
 *
 * Everything here is expected to pass under the tsan preset: the
 * daemon's thread model (acceptor + per-connection readers +
 * per-stream simulators + control + reaper) gets its concurrency
 * shakedown in these tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/sink.hh"
#include "serve/client.hh"
#include "serve/config.hh"
#include "serve/daemon.hh"
#include "serve/frame.hh"
#include "serve/queue.hh"
#include "serve/stream.hh"
#include "sim/experiment.hh"
#include "trace/fault_trace.hh"
#include "workloads/registry.hh"

using namespace ccm;
using obs::JsonValue;

namespace
{

/** Collecting sink for frame-parser tests. */
struct CollectSink final : serve::FrameSink
{
    std::vector<MemRecord> records;
    std::vector<std::string> hellos;
    int ends = 0;

    void
    onHello(std::uint32_t, const std::string &name) override
    {
        hellos.push_back(name);
    }

    void
    onRecords(const MemRecord *recs, std::size_t n) override
    {
        records.insert(records.end(), recs, recs + n);
    }

    void onEnd() override { ++ends; }
};

/** Small, plausible records the wire codec will accept. */
std::vector<MemRecord>
someRecords(std::size_t n, std::uint64_t salt = 0)
{
    std::vector<MemRecord> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i].pc = 0x400000 + 4 * i;
        out[i].addr = 0x10000 + 64 * (i + salt);
        out[i].type =
            (i % 3 == 0) ? RecordType::Store : RecordType::Load;
    }
    return out;
}

/** Poll @p pred every 5 ms until it holds or @p ms elapse. */
bool
waitFor(const std::function<bool()> &pred, int ms = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

std::string
sockPath(const char *tag)
{
    return ::testing::TempDir() + "ccm_" + tag + ".sock";
}

std::uint64_t
counter(const serve::ServeDaemon &d, const char *key)
{
    return d.statsDocument().at("daemon").at(key).asU64();
}

} // namespace

// ---- Frame protocol ------------------------------------------------

TEST(ServeFrame, RoundTripHelloRecordsEnd)
{
    std::vector<std::uint8_t> wire;
    serve::appendHelloFrame(wire, "unit-1");
    std::vector<MemRecord> recs = someRecords(600); // > one frame
    serve::appendRecordsFrames(wire, recs.data(), recs.size());
    serve::appendEndFrame(wire);

    CollectSink sink;
    serve::FrameParser parser;
    // Drip-feed in awkward chunk sizes to exercise reassembly.
    for (std::size_t at = 0; at < wire.size();) {
        std::size_t n = std::min<std::size_t>(7, wire.size() - at);
        parser.feed(wire.data() + at, n, sink);
        at += n;
    }
    parser.finish(sink);

    ASSERT_EQ(sink.hellos.size(), 1u);
    EXPECT_EQ(sink.hellos[0], "unit-1");
    EXPECT_EQ(sink.ends, 1);
    EXPECT_TRUE(parser.sawEnd());
    ASSERT_EQ(sink.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(sink.records[i].addr, recs[i].addr);
        EXPECT_EQ(sink.records[i].pc, recs[i].pc);
    }
    const serve::FrameStats &fs = parser.stats();
    EXPECT_TRUE(fs.clean());
    EXPECT_EQ(fs.records, recs.size());
    EXPECT_EQ(fs.defects(), 0u);
}

TEST(ServeFrame, ResyncsPastGarbageBetweenFrames)
{
    std::vector<std::uint8_t> wire;
    serve::appendHelloFrame(wire, "dirty");
    std::vector<MemRecord> first = someRecords(100);
    serve::appendRecordsFrames(wire, first.data(), first.size());
    // A run of garbage that contains no believable frame boundary.
    wire.insert(wire.end(), 57, 0xa5);
    std::vector<MemRecord> second = someRecords(100, 7);
    serve::appendRecordsFrames(wire, second.data(), second.size());
    serve::appendEndFrame(wire);

    CollectSink sink;
    serve::FrameParser parser;
    parser.feed(wire.data(), wire.size(), sink);
    parser.finish(sink);

    // Both record frames survive; the garbage is counted, not fatal.
    EXPECT_EQ(sink.records.size(), 200u);
    EXPECT_TRUE(parser.sawEnd());
    const serve::FrameStats &fs = parser.stats();
    EXPECT_EQ(fs.firstDefect, serve::FrameDefect::BadMagic);
    EXPECT_EQ(fs.resyncEvents, 1u);
    EXPECT_EQ(fs.bytesSkipped, 57u);
}

TEST(ServeFrame, ChecksumMismatchDropsOnlyThatFrame)
{
    std::vector<std::uint8_t> wire;
    std::vector<MemRecord> recs = someRecords(10);
    serve::appendRecordsFrames(wire, recs.data(), recs.size());
    const std::size_t frame1 = wire.size();
    serve::appendRecordsFrames(wire, recs.data(), recs.size());
    // Corrupt one payload byte of the second frame.
    wire[frame1 + serve::kFrameHeaderBytes + 3] ^= 0xff;
    serve::appendEndFrame(wire);

    CollectSink sink;
    serve::FrameParser parser;
    parser.feed(wire.data(), wire.size(), sink);
    parser.finish(sink);

    EXPECT_EQ(sink.records.size(), 10u);
    EXPECT_TRUE(parser.sawEnd());
    // A bad checksum means the claimed length cannot be trusted, so
    // the parser resyncs byte-by-byte rather than skipping a "frame".
    EXPECT_EQ(parser.stats().firstDefect,
              serve::FrameDefect::BadChecksum);
    EXPECT_GE(parser.stats().resyncEvents, 1u);
    EXPECT_GT(parser.stats().bytesSkipped, 0u);
}

TEST(ServeFrame, TruncatedTailIsDiagnosedAtFinish)
{
    std::vector<std::uint8_t> wire;
    std::vector<MemRecord> recs = someRecords(64);
    serve::appendRecordsFrames(wire, recs.data(), recs.size());
    wire.resize(wire.size() - 13); // cut mid-frame

    CollectSink sink;
    serve::FrameParser parser;
    parser.feed(wire.data(), wire.size(), sink);
    EXPECT_TRUE(parser.stats().clean()); // nothing wrong *yet*
    parser.finish(sink);
    EXPECT_EQ(parser.stats().firstDefect,
              serve::FrameDefect::TruncatedTail);
    EXPECT_FALSE(parser.sawEnd());
    EXPECT_TRUE(sink.records.empty());
}

// ---- Record queue --------------------------------------------------

TEST(ServeQueue, BlockPolicyIsLossless)
{
    serve::RecordQueue q(64, serve::OverflowPolicy::Block);
    const std::size_t total = 10'000;

    std::thread producer([&] {
        std::vector<MemRecord> recs = someRecords(128);
        std::size_t sent = 0;
        while (sent < total) {
            std::size_t n = std::min(recs.size(), total - sent);
            EXPECT_EQ(q.push(recs.data(), n), n);
            sent += n;
        }
        q.closeInput();
    });

    MemRecord buf[96];
    std::size_t got = 0, n = 0;
    while ((n = q.pop(buf, 96)) != 0)
        got += n;
    producer.join();

    EXPECT_EQ(got, total);
    serve::QueueStats st = q.stats();
    EXPECT_EQ(st.pushed, total);
    EXPECT_EQ(st.popped, total);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_LE(st.maxDepth, 64u);
}

TEST(ServeQueue, ShedPolicyDropsOverflowAndCounts)
{
    serve::RecordQueue q(8, serve::OverflowPolicy::Shed);
    std::vector<MemRecord> recs = someRecords(32);
    EXPECT_EQ(q.push(recs.data(), recs.size()), 8u);
    q.closeInput();

    MemRecord buf[32];
    EXPECT_EQ(q.pop(buf, 32), 8u);
    EXPECT_EQ(q.pop(buf, 32), 0u); // drained + closed

    serve::QueueStats st = q.stats();
    EXPECT_EQ(st.pushed, 8u);
    EXPECT_EQ(st.shed, 24u);
}

TEST(ServeQueue, AbortUnblocksAWaitingConsumer)
{
    serve::RecordQueue q(8, serve::OverflowPolicy::Block);
    std::atomic<bool> popped{false};
    std::thread consumer([&] {
        MemRecord r;
        EXPECT_EQ(q.pop(&r, 1), 0u); // blocks until the abort
        popped = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(popped.load());
    q.abort();
    consumer.join();
    EXPECT_TRUE(popped.load());
    EXPECT_TRUE(q.aborted());
}

// ---- Queue interleaving races (tsan shakedown) ---------------------
//
// Each test forces one specific cross-thread interleaving the daemon
// depends on: a producer parked in push() must be released by
// abort()/closeInput() with a truthful accepted count, a parked
// consumer must be released by abort(), and the two policies must
// keep their invariants (Shed never blocks, Block never exceeds the
// capacity bound) while both sides hammer the lock.  All of them run
// under the tsan preset in CI.

TEST(ServeQueue, AbortReleasesABlockedProducer)
{
    serve::RecordQueue q(4, serve::OverflowPolicy::Block);
    std::vector<MemRecord> recs = someRecords(8);

    std::size_t accepted = 0;
    std::thread producer([&] {
        // Accepts 4, then parks in push() on the full ring.
        accepted = q.push(recs.data(), recs.size());
    });
    // The producer is provably mid-push once the first 4 records have
    // landed and nothing has drained them.
    waitFor([&] { return q.stats().pushed == 4; });
    q.abort();
    producer.join();

    EXPECT_EQ(accepted, 4u);
    EXPECT_TRUE(q.aborted());
    MemRecord buf[4];
    EXPECT_EQ(q.pop(buf, 4), 0u); // aborted queues deliver nothing
}

TEST(ServeQueue, CloseInputReleasesABlockedProducer)
{
    serve::RecordQueue q(4, serve::OverflowPolicy::Block);
    std::vector<MemRecord> recs = someRecords(8);

    std::size_t accepted = 0;
    std::thread producer(
        [&] { accepted = q.push(recs.data(), recs.size()); });
    waitFor([&] { return q.stats().pushed == 4; });
    q.closeInput();
    producer.join();

    // Unlike abort, closeInput keeps what was already accepted: the
    // consumer still drains the 4 in-flight records.
    EXPECT_EQ(accepted, 4u);
    MemRecord buf[8];
    EXPECT_EQ(q.pop(buf, 8), 4u);
    EXPECT_EQ(q.pop(buf, 8), 0u); // drained + closed
}

TEST(ServeQueue, AbortReleasesEveryBlockedConsumer)
{
    serve::RecordQueue q(8, serve::OverflowPolicy::Block);
    std::atomic<int> released{0};
    std::vector<std::thread> consumers;
    consumers.reserve(3);
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&] {
            MemRecord r;
            EXPECT_EQ(q.pop(&r, 1), 0u);
            ++released;
        });
    }
    // No producer exists, so every consumer is parked in pop().
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(released.load(), 0);
    q.abort();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(released.load(), 3);
}

TEST(ServeQueue, ShedNeverBlocksUnderConcurrentDrain)
{
    serve::RecordQueue q(8, serve::OverflowPolicy::Shed);
    const std::size_t batches = 200;
    std::vector<MemRecord> recs = someRecords(32);

    std::thread consumer([&] {
        MemRecord buf[16];
        while (q.pop(buf, 16) != 0) {
        }
    });
    // Every push must return immediately, full ring or not; with a
    // cap of 8 and batches of 32 the overflow is always shed.
    for (std::size_t i = 0; i < batches; ++i)
        q.push(recs.data(), recs.size());
    q.closeInput();
    consumer.join();

    serve::QueueStats st = q.stats();
    EXPECT_EQ(st.pushed + st.shed, batches * recs.size());
    EXPECT_EQ(st.popped, st.pushed);
    EXPECT_GT(st.shed, 0u);
    EXPECT_LE(st.maxDepth, 8u);
}

TEST(ServeQueue, BlockPolicyBoundsDepthUnderRacingPushPop)
{
    serve::RecordQueue q(4, serve::OverflowPolicy::Block);
    const std::size_t total = 4'000;
    std::vector<MemRecord> recs = someRecords(16);

    std::thread producer([&] {
        std::size_t sent = 0;
        while (sent < total) {
            std::size_t n = std::min(recs.size(), total - sent);
            EXPECT_EQ(q.push(recs.data(), n), n);
            sent += n;
        }
        q.closeInput();
    });

    MemRecord buf[3];
    std::size_t got = 0, n = 0;
    while ((n = q.pop(buf, 3)) != 0)
        got += n;
    producer.join();

    // The backpressure handshake is airtight: lossless, and the ring
    // never held more than its capacity.
    EXPECT_EQ(got, total);
    serve::QueueStats st = q.stats();
    EXPECT_EQ(st.pushed, total);
    EXPECT_EQ(st.popped, total);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.maxDepth, 4u);
}

TEST(ServeQueue, PolicyNamesRoundTrip)
{
    EXPECT_STREQ(serve::toString(serve::OverflowPolicy::Block),
                 "block");
    EXPECT_STREQ(serve::toString(serve::OverflowPolicy::Shed), "shed");
    auto p = serve::parseOverflowPolicy("shed");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value(), serve::OverflowPolicy::Shed);
    EXPECT_FALSE(serve::parseOverflowPolicy("drop-newest").ok());
}

// ---- Daemon configuration ------------------------------------------

TEST(ServeConfig, ParsesKeysCommentsAndBlankLines)
{
    auto cfg = serve::parseServeConfig("# serving config\n"
                                       "arch victim\n"
                                       "\n"
                                       "l1-kb 16\n"
                                       "queue-records 4096\n"
                                       "policy shed\n"
                                       "defect-budget 5\n"
                                       "window-every 10000\n");
    ASSERT_TRUE(cfg.ok()) << cfg.status().toString();
    EXPECT_EQ(cfg.value().arch, "victim");
    EXPECT_EQ(cfg.value().system.mem.l1Bytes, 16u * 1024);
    EXPECT_EQ(cfg.value().limits.queueRecords, 4096u);
    EXPECT_EQ(cfg.value().limits.policy, serve::OverflowPolicy::Shed);
    EXPECT_EQ(cfg.value().limits.defectBudget, 5u);
    EXPECT_EQ(cfg.value().limits.windowEvery, 10000u);
}

TEST(ServeConfig, RejectsUnknownKeysAndBadValues)
{
    EXPECT_FALSE(serve::parseServeConfig("l1-size 16\n").ok());
    EXPECT_FALSE(serve::parseServeConfig("arch ternary\n").ok());
    EXPECT_FALSE(serve::parseServeConfig("l1-kb sixteen\n").ok());
    EXPECT_FALSE(serve::parseServeConfig("policy maybe\n").ok());
    Status s = serve::parseServeConfig("bogus 1\n").status();
    EXPECT_NE(s.message().find("bogus"), std::string::npos);
}

TEST(ServeConfig, RejectsGeometryTheSimulatorWouldFatalOn)
{
    // Numerically valid values that MemorySystem would fatal on at
    // stream start must be rejected at parse time, not accepted and
    // left to fail every subsequent stream.
    EXPECT_FALSE(serve::parseServeConfig("l1-assoc 0\n").ok());
    EXPECT_FALSE(serve::parseServeConfig("l1-kb 3\n").ok());
    EXPECT_FALSE(serve::parseServeConfig("l2-kb 7\n").ok());
    Status s = serve::parseServeConfig("l1-assoc 0\n").status();
    EXPECT_EQ(s.code(), ErrorCode::BadConfig);
    EXPECT_NE(s.message().find("invalid geometry"),
              std::string::npos);

    auto ok = serve::parseServeConfig("l1-kb 16\nl1-assoc 2\n");
    EXPECT_TRUE(ok.ok()) << ok.status().toString();
}

TEST(ServeConfig, LoadReportsMissingFileWithPathContext)
{
    auto cfg = serve::loadServeConfig(::testing::TempDir() +
                                      "ccm_no_such_config");
    ASSERT_FALSE(cfg.ok());
    EXPECT_NE(cfg.status().message().find("config file"),
              std::string::npos);
}

// ---- Stream pipeline: byte-identity with the batch path ------------

TEST(ServeStream, PipelineMatchesBatchRunExactly)
{
    const std::size_t refs = 20'000;
    auto batch_wl = makeWorkload("tomcatv", refs, 42);
    ASSERT_TRUE(batch_wl);
    RunOutput batch = runTiming(*batch_wl, baselineConfig());

    serve::StreamPipeline pipe(1, "t", baselineConfig(),
                               serve::StreamLimits{}, 1);
    pipe.start();
    auto stream_wl = makeWorkload("tomcatv", refs, 42);
    MemRecord buf[256];
    std::size_t n = 0;
    while ((n = stream_wl->nextBatch(buf, 256)) != 0)
        pipe.queue().push(buf, n);
    pipe.queue().closeInput();
    pipe.join();

    ASSERT_EQ(pipe.state(), serve::StreamState::Done);
    EXPECT_TRUE(pipe.status().isOk());

    // The determinism guarantee, literally: the streamed stats
    // serialize byte-for-byte identical to the batch run's.
    EXPECT_EQ(obs::memStatsToJson(pipe.output().mem).toString(),
              obs::memStatsToJson(batch.mem).toString());
    EXPECT_EQ(obs::simResultToJson(pipe.output().sim).toString(),
              obs::simResultToJson(batch.sim).toString());
    EXPECT_EQ(obs::setHistogramsToJson(pipe.output().heat).toString(),
              obs::setHistogramsToJson(batch.heat).toString());
}

TEST(ServeStream, FailWithIsFirstWinsAndFinal)
{
    serve::StreamPipeline pipe(2, "f", baselineConfig(),
                               serve::StreamLimits{}, 1);
    pipe.start();
    pipe.failWith(Status::corruptTrace("first reason"));
    pipe.failWith(Status::aborted("second reason"));
    pipe.queue().abort();
    pipe.join();

    EXPECT_EQ(pipe.state(), serve::StreamState::Failed);
    EXPECT_EQ(pipe.status().code(), ErrorCode::CorruptTrace);
    EXPECT_EQ(pipe.status().message(), "first reason");

    // After the final state, further failWith calls are no-ops.
    pipe.failWith(Status::internal("too late"));
    EXPECT_EQ(pipe.status().message(), "first reason");
}

TEST(ServeStream, FailedRunNeverBlocksAProducer)
{
    // A geometry the simulator rejects at start: the simulation
    // thread dies immediately, so nothing will ever pop the queue.
    SystemConfig bad = baselineConfig();
    bad.mem.l1Assoc = 3;

    serve::StreamLimits lim;
    lim.queueRecords = 16;
    lim.policy = serve::OverflowPolicy::Block;
    serve::StreamPipeline pipe(7, "doomed", bad, lim, 1);
    pipe.start();

    // Push far more than the queue holds.  Before runBody aborted the
    // queue on failure, this deadlocked in push() once the dead
    // queue filled — stranding the connection reader forever.
    std::vector<MemRecord> recs = someRecords(64);
    for (int i = 0; i < 16; ++i)
        pipe.queue().push(recs.data(), recs.size());
    pipe.queue().closeInput();
    pipe.join();

    EXPECT_EQ(pipe.state(), serve::StreamState::Failed);
    EXPECT_EQ(pipe.status().code(), ErrorCode::BadConfig);
    EXPECT_TRUE(pipe.queue().aborted());
}

// ---- Daemon end to end ---------------------------------------------

namespace
{

serve::ServeOptions
daemonOptions(const char *tag)
{
    serve::ServeOptions o;
    o.socketPath = sockPath(tag);
    o.controlPath = sockPath((std::string(tag) + "c").c_str());
    o.pollMs = 20;
    return o;
}

/** Stream workload @p wl cleanly into the daemon, return sent count. */
void
produceClean(const std::string &socket, const std::string &name,
             const std::string &wl, std::size_t refs,
             std::uint64_t seed)
{
    auto src = makeWorkload(wl, refs, seed);
    ASSERT_TRUE(src);
    auto client = serve::ServeClient::connect(socket, name);
    ASSERT_TRUE(client.ok()) << client.status().toString();
    Status s = client.value().streamAll(*src);
    EXPECT_TRUE(s.isOk()) << s.toString();
}

} // namespace

/**
 * The fault-isolation acceptance gate: eight concurrent streams, one
 * wire-corrupted and one cut mid-stream; the daemon serves the other
 * six to completion with stats byte-identical to batch runs of the
 * same traces, reports both failures per-stream via Status, and
 * drains cleanly.
 */
TEST(ServeDaemon, FaultIsolationAcrossEightConcurrentStreams)
{
    serve::ServeOptions o = daemonOptions("gate");
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    const char *kWorkloads[6] = {"tomcatv", "gcc",      "swim",
                                 "go",      "compress", "wave5"};
    const std::size_t kRefs = 6000;

    std::vector<std::thread> producers;
    producers.reserve(8);
    for (int i = 0; i < 6; ++i) {
        producers.emplace_back([&, i] {
            produceClean(o.socketPath, std::string("clean-") +
                                           kWorkloads[i],
                         kWorkloads[i], kRefs, 42);
        });
    }
    // Producer 7: wire corruption (garbage past the defect budget).
    producers.emplace_back([&] {
        auto client =
            serve::ServeClient::connect(o.socketPath, "corrupt");
        ASSERT_TRUE(client.ok());
        std::vector<MemRecord> recs = someRecords(256);
        (void)client.value().sendRecords(recs.data(), recs.size());
        std::vector<std::uint8_t> junk(96, 0xa5);
        (void)client.value().sendRawBytes(junk.data(), junk.size());
        // The daemon cuts us after the defect; nothing more to send.
    });
    // Producer 8: crash mid-stream (no end frame).
    producers.emplace_back([&] {
        auto client =
            serve::ServeClient::connect(o.socketPath, "crash");
        ASSERT_TRUE(client.ok());
        std::vector<MemRecord> recs = someRecords(512, 3);
        (void)client.value().sendRecords(recs.data(), recs.size());
        client.value().closeAbrupt();
    });
    for (auto &t : producers)
        t.join();

    // Every stream retires: 6 done, 2 failed, none stuck.
    ASSERT_TRUE(waitFor([&] {
        return counter(daemon, "streams_done") == 6 &&
               counter(daemon, "streams_failed") == 2 &&
               daemon.activeStreams() == 0;
    })) << daemon.statsDocument().toString();

    JsonValue doc = daemon.statsDocument();
    Status valid = obs::validateStatsDoc(doc);
    EXPECT_TRUE(valid.isOk()) << valid.toString();
    EXPECT_EQ(doc.at("daemon").at("streams_total").asU64(), 8u);

    // Index the per-stream reports by name.
    std::map<std::string, const JsonValue *> byName;
    for (const JsonValue &s : doc.at("streams").elements())
        byName[s.at("name").asString()] = &s;
    ASSERT_EQ(byName.size(), 8u);

    // The six clean streams: Done, and byte-identical to batch runs.
    for (int i = 0; i < 6; ++i) {
        const std::string name =
            std::string("clean-") + kWorkloads[i];
        ASSERT_TRUE(byName.count(name)) << name;
        const JsonValue &s = *byName[name];
        EXPECT_EQ(s.at("state").asString(), "done") << name;
        auto wl = makeWorkload(kWorkloads[i], kRefs, 42);
        RunOutput batch = runTiming(*wl, baselineConfig());
        EXPECT_EQ(s.at("mem").toString(),
                  obs::memStatsToJson(batch.mem).toString())
            << name;
        EXPECT_EQ(s.at("sim").toString(),
                  obs::simResultToJson(batch.sim).toString())
            << name;
    }

    // The two faulty streams: Failed, with a Status explaining why.
    ASSERT_TRUE(byName.count("corrupt"));
    EXPECT_EQ(byName["corrupt"]->at("state").asString(), "failed");
    EXPECT_NE(byName["corrupt"]->at("error").asString().find(
                  "corrupt-trace"),
              std::string::npos);
    ASSERT_TRUE(byName.count("crash"));
    EXPECT_EQ(byName["crash"]->at("state").asString(), "failed");
    EXPECT_NE(byName["crash"]->at("error").asString().find(
                  "end frame"),
              std::string::npos);

    daemon.drainAndStop();
}

TEST(ServeDaemon, SimulationFailureRetiresStreamAndStillDrains)
{
    // Inject a geometry that fails at simulation start directly into
    // the runtime (the config loader rejects such files now), standing
    // in for any mid-flight simulation failure.  The stream must
    // retire as Failed, release its admission slot, and never strand
    // the connection reader in a blocked push.
    serve::ServeOptions o = daemonOptions("sfl");
    o.runtime.system.mem.l1Assoc = 3;
    o.runtime.limits.queueRecords = 16;
    o.runtime.limits.policy = serve::OverflowPolicy::Block;
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto client = serve::ServeClient::connect(o.socketPath, "doomed");
    ASSERT_TRUE(client.ok()) << client.status().toString();
    std::vector<MemRecord> recs = someRecords(256);
    for (int i = 0; i < 64; ++i) {
        // Keep feeding until the daemon cuts the connection; send
        // errors past that point are expected.
        if (!client.value().sendRecords(recs.data(), recs.size())
                 .isOk())
            break;
    }

    ASSERT_TRUE(waitFor([&] {
        return counter(daemon, "streams_failed") == 1 &&
               daemon.activeStreams() == 0;
    })) << daemon.statsDocument().toString();

    JsonValue doc = daemon.statsDocument();
    const std::string err =
        doc.at("streams").elements().at(0).at("error").asString();
    EXPECT_NE(err.find("bad-config"), std::string::npos) << err;

    daemon.drainAndStop(); // must not hang on the retired stream
}

TEST(ServeDaemon, RecordLevelFaultsAreServedNotRejected)
{
    // FaultInjectingSource produces structurally valid records; the
    // daemon must simulate them like any other trace (defect budgets
    // are about wire damage, not trace content).
    serve::ServeOptions o = daemonOptions("flt");
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto base = makeWorkload("gcc", 5000, 9);
    FaultPlan plan;
    plan.seed = 11;
    plan.bitFlipRate = 0.01;
    plan.dropRate = 0.01;
    plan.duplicateRate = 0.01;
    FaultInjectingSource faulty(*base, plan);

    auto client = serve::ServeClient::connect(o.socketPath, "noisy");
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().streamAll(faulty).isOk());

    ASSERT_TRUE(
        waitFor([&] { return counter(daemon, "streams_done") == 1; }));
    JsonValue doc = daemon.statsDocument();
    EXPECT_EQ(doc.at("daemon").at("streams_failed").asU64(), 0u);
    EXPECT_EQ(doc.at("streams").elements().at(0).at("frames")
                  .at("malformed_frames").asU64(),
              0u);
    daemon.drainAndStop();
}

TEST(ServeDaemon, IdleStreamsAreReapedAfterTtl)
{
    serve::ServeOptions o = daemonOptions("ttl");
    o.idleTtlMs = 100;
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto client = serve::ServeClient::connect(o.socketPath, "stalled");
    ASSERT_TRUE(client.ok());
    std::vector<MemRecord> recs = someRecords(64);
    ASSERT_TRUE(
        client.value().sendRecords(recs.data(), recs.size()).isOk());
    // ...and then the producer goes silent, connection still open.

    ASSERT_TRUE(waitFor(
        [&] { return counter(daemon, "streams_failed") == 1; }));
    JsonValue doc = daemon.statsDocument();
    const std::string err =
        doc.at("streams").elements().at(0).at("error").asString();
    EXPECT_NE(err.find("idle"), std::string::npos) << err;
    EXPECT_NE(err.find("reaped"), std::string::npos) << err;
    daemon.drainAndStop();
}

TEST(ServeDaemon, AdmissionRefusedBeyondMaxStreams)
{
    serve::ServeOptions o = daemonOptions("cap");
    o.maxStreams = 1;
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto first = serve::ServeClient::connect(o.socketPath, "one");
    ASSERT_TRUE(first.ok());
    std::vector<MemRecord> recs = someRecords(16);
    ASSERT_TRUE(
        first.value().sendRecords(recs.data(), recs.size()).isOk());
    ASSERT_TRUE(waitFor([&] { return daemon.activeStreams() == 1; }));

    auto second = serve::ServeClient::connect(o.socketPath, "two");
    ASSERT_TRUE(second.ok()); // connect works; admission refuses
    ASSERT_TRUE(waitFor(
        [&] { return counter(daemon, "streams_refused") == 1; }));
    EXPECT_EQ(daemon.activeStreams(), 1u);

    ASSERT_TRUE(first.value().sendEnd().isOk());
    ASSERT_TRUE(waitFor(
        [&] { return counter(daemon, "streams_done") == 1; }));
    daemon.drainAndStop();
}

TEST(ServeDaemon, DrainCutsStragglersAndRefusesNewStreams)
{
    serve::ServeOptions o = daemonOptions("drn");
    o.drainGraceMs = 80;
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto straggler =
        serve::ServeClient::connect(o.socketPath, "straggler");
    ASSERT_TRUE(straggler.ok());
    std::vector<MemRecord> recs = someRecords(64);
    ASSERT_TRUE(straggler.value()
                    .sendRecords(recs.data(), recs.size())
                    .isOk());
    ASSERT_TRUE(waitFor([&] { return daemon.activeStreams() == 1; }));

    daemon.requestDrain();
    EXPECT_TRUE(daemon.draining());
    daemon.drainAndStop(); // must not hang on the open connection

    JsonValue doc = daemon.statsDocument();
    EXPECT_EQ(doc.at("daemon").at("streams_failed").asU64(), 1u);
    EXPECT_NE(
        doc.at("streams").elements().at(0).at("error").asString().find("drain"),
        std::string::npos);
}

TEST(ServeDaemon, ConcurrentConnectDisconnectChurn)
{
    serve::ServeOptions o = daemonOptions("chrn");
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    // A mix of producers that finish, vanish, or never say hello,
    // connecting and disconnecting concurrently.
    std::vector<std::thread> churn;
    for (int i = 0; i < 4; ++i) {
        churn.emplace_back([&, i] {
            for (int round = 0; round < 3; ++round) {
                const std::string name = "churn-" +
                                         std::to_string(i) + "-" +
                                         std::to_string(round);
                auto c =
                    serve::ServeClient::connect(o.socketPath, name);
                if (!c.ok())
                    continue;
                std::vector<MemRecord> recs = someRecords(
                    128, static_cast<std::uint64_t>(i * 7 + round));
                (void)c.value().sendRecords(recs.data(), recs.size());
                if ((i + round) % 2 == 0)
                    (void)c.value().sendEnd();
                else
                    c.value().closeAbrupt();
            }
        });
    }
    for (auto &t : churn)
        t.join();

    ASSERT_TRUE(waitFor([&] {
        return counter(daemon, "streams_done") +
                   counter(daemon, "streams_failed") ==
               12;
    }));
    JsonValue doc = daemon.statsDocument();
    EXPECT_TRUE(obs::validateStatsDoc(doc).isOk());
    EXPECT_EQ(doc.at("daemon").at("streams_total").asU64(), 12u);
    daemon.drainAndStop();
}

TEST(ServeDaemon, ReloadSwapsConfigForNewStreamsOnly)
{
    const std::string cfg_path =
        ::testing::TempDir() + "ccm_reload.conf";
    {
        std::ofstream f(cfg_path);
        f << "arch baseline\n";
    }
    serve::ServeOptions o = daemonOptions("rld");
    o.configPath = cfg_path;
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());
    EXPECT_EQ(daemon.generation(), 1u);

    {
        std::ofstream f(cfg_path);
        f << "arch twoway\nqueue-records 2048\n";
    }
    ASSERT_TRUE(daemon.reload().isOk());
    EXPECT_EQ(daemon.generation(), 2u);

    produceClean(o.socketPath, "post-reload", "swim", 3000, 5);
    ASSERT_TRUE(
        waitFor([&] { return counter(daemon, "streams_done") == 1; }));
    JsonValue doc = daemon.statsDocument();
    EXPECT_EQ(doc.at("streams").elements().at(0).at("generation").asU64(), 2u);
    EXPECT_EQ(doc.at("streams").elements().at(0).at("queue")
                  .at("capacity").asU64(),
              2048u);

    // A broken file is rejected and the old config stays in force.
    {
        std::ofstream f(cfg_path);
        f << "arch nonsense\n";
    }
    Status bad = daemon.reload();
    ASSERT_FALSE(bad.isOk());
    EXPECT_NE(bad.message().find("previous configuration kept"),
              std::string::npos);
    EXPECT_EQ(daemon.generation(), 2u);

    // Same for a file whose geometry the simulator would fatal on:
    // it must never become the running configuration.
    {
        std::ofstream f(cfg_path);
        f << "arch twoway\nl1-assoc 0\n";
    }
    Status geom = daemon.reload();
    ASSERT_FALSE(geom.isOk());
    EXPECT_NE(geom.message().find("invalid geometry"),
              std::string::npos);
    EXPECT_EQ(daemon.generation(), 2u);
    daemon.drainAndStop();
}

TEST(ServeDaemon, ControlSocketAnswersCommands)
{
    serve::ServeOptions o = daemonOptions("ctl");
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    auto pong = serve::controlRequest(o.controlPath, "ping");
    ASSERT_TRUE(pong.ok()) << pong.status().toString();
    EXPECT_EQ(pong.value(), "pong\n");

    auto stats = serve::controlRequest(o.controlPath, "stats");
    ASSERT_TRUE(stats.ok());
    auto parsed = JsonValue::parse(stats.value());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_TRUE(obs::validateStatsDoc(parsed.value()).isOk());
    EXPECT_EQ(parsed.value().at("kind").asString(), "serve");

    auto junk = serve::controlRequest(o.controlPath, "frobnicate");
    ASSERT_TRUE(junk.ok());
    EXPECT_EQ(junk.value().rfind("error:", 0), 0u);

    auto drain = serve::controlRequest(o.controlPath, "drain");
    ASSERT_TRUE(drain.ok());
    EXPECT_EQ(drain.value(), "ok\n");
    EXPECT_TRUE(daemon.draining());
    daemon.drainAndStop();
}

TEST(ServeClient, ConnectRetriesThenReportsAttempts)
{
    serve::ClientOptions copts;
    copts.connectRetries = 3;
    copts.backoffInitialMs = 1;
    auto c = serve::ServeClient::connect(
        ::testing::TempDir() + "ccm_nowhere.sock", "x", copts);
    ASSERT_FALSE(c.ok());
    EXPECT_NE(c.status().message().find("3 attempts"),
              std::string::npos)
        << c.status().toString();
}

TEST(ServeDaemon, MetricsCommandServesTelemetry)
{
    serve::ServeOptions o = daemonOptions("met");
    serve::ServeDaemon daemon(o);
    ASSERT_TRUE(daemon.start().isOk());

    // Three concurrent producers so the scraped instruments reflect
    // real multi-stream traffic (the acceptance shape).
    std::vector<std::thread> producers;
    for (int i = 0; i < 3; ++i) {
        producers.emplace_back([&o, i] {
            produceClean(o.socketPath,
                         "met-" + std::to_string(i), "go", 4000,
                         static_cast<std::uint64_t>(i) + 1);
        });
    }
    for (auto &t : producers)
        t.join();
    ASSERT_TRUE(waitFor([&] {
        return counter(daemon, "streams_done") >= 3;
    }));

    // Prometheus text exposition over the control socket.
    auto text = serve::controlRequest(o.controlPath, "metrics");
    ASSERT_TRUE(text.ok()) << text.status().toString();
    for (const char *needle :
         {"# TYPE ccm_serve_streams_admitted_total counter",
          "# TYPE ccm_serve_batch_classify_us histogram",
          "ccm_serve_batch_classify_us_bucket{le=\"+Inf\"}",
          "ccm_serve_frame_decode_us_count"})
        EXPECT_NE(text.value().find(needle), std::string::npos)
            << needle;

    // The JSON rendering is a valid kind:"metrics" ccm-stats doc.
    auto json = serve::controlRequest(o.controlPath, "metrics json");
    ASSERT_TRUE(json.ok()) << json.status().toString();
    auto parsed = JsonValue::parse(json.value());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const JsonValue &doc = parsed.value();
    EXPECT_EQ(doc.at("kind").asString(), "metrics");
    Status valid = obs::validateStatsDoc(doc);
    EXPECT_TRUE(valid.isOk()) << valid.toString();

    // The serve instruments saw this test's traffic (the registry is
    // process-global, so compare with >=, not ==).
    std::uint64_t admitted = 0, classify_count = 0;
    for (const auto &m : doc.at("metrics").elements()) {
        const std::string &name = m.at("name").asString();
        if (name == "ccm_serve_streams_admitted_total")
            admitted = m.at("value").asU64();
        else if (name == "ccm_serve_batch_classify_us")
            classify_count = m.at("count").asU64();
    }
    EXPECT_GE(admitted, 3u);
    EXPECT_GE(classify_count, 1u);

    daemon.drainAndStop();
}
