/**
 * @file
 * Golden-value regression tests: exact measured values for a few
 * (workload, configuration) pairs.  The simulator is fully
 * deterministic, so any change to these numbers means simulated
 * behaviour changed — deliberate changes must update the constants
 * (and re-examine EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "mct/classify_run.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

constexpr std::size_t refs = 50'000;
constexpr std::uint64_t seed = 42;

VectorTrace
capture(const char *name)
{
    auto wl = makeWorkload(name, refs, seed);
    return VectorTrace::capture(*wl);
}

TEST(Golden, WorkloadStreamsAreFrozen)
{
    // First few tomcatv addresses are part of the repo's contract.
    auto wl = makeWorkload("tomcatv", 16, seed);
    wl->reset();
    MemRecord r;
    std::vector<Addr> mem_addrs;
    while (wl->next(r)) {
        if (r.isMem())
            mem_addrs.push_back(r.addr);
    }
    ASSERT_EQ(mem_addrs.size(), 16u);
    EXPECT_EQ(mem_addrs[0], 0x40000008u);            // A[1]
    EXPECT_EQ(mem_addrs[1], 0x40040008u);            // B[1]
    EXPECT_EQ(mem_addrs[2], 0x40000008u);            // A[1] again
}

TEST(Golden, ClassificationCounts)
{
    VectorTrace t = capture("tomcatv");
    ClassifyConfig cfg;
    ClassifyResult res = classifyRun(t, cfg);
    EXPECT_EQ(res.references, refs);
    EXPECT_EQ(res.misses, 19405u);
    EXPECT_EQ(res.scorer.oracleConflicts(), 15763u);
    EXPECT_EQ(res.scorer.compulsoryMisses(), 2560u);
}

TEST(Golden, BaselineTimingCycles)
{
    VectorTrace t = capture("compress");
    RunOutput r = runTiming(t, baselineConfig());
    EXPECT_EQ(r.sim.cycles, 224571u);
    EXPECT_EQ(r.mem.l1Misses, 9821u);
    EXPECT_EQ(r.mem.l2Misses, 5212u);
    EXPECT_EQ(r.mem.conflictMisses, 2076u);
}

TEST(Golden, VictimCacheCounters)
{
    VectorTrace t = capture("vortex");
    RunOutput r = runTiming(t, victimConfig(false, false));
    EXPECT_EQ(r.mem.swaps, r.mem.bufHitVictim);
    EXPECT_EQ(r.mem.bufHitVictim, 4247u);
    EXPECT_EQ(r.mem.victimFills, 11251u);
}

TEST(Golden, AmbCounters)
{
    VectorTrace t = capture("tomcatv");
    RunOutput r = runTiming(t, ambConfig(true, true, false));
    EXPECT_EQ(r.mem.bufHitVictim, 15539u);
    EXPECT_EQ(r.mem.prefIssued, 3130u);
    EXPECT_EQ(r.mem.swaps, 0u);
}

} // namespace
} // namespace ccm
