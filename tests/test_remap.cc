/**
 * @file
 * Unit tests for the CML buffer and the page-recoloring simulation
 * (§5.6 application).
 */

#include <gtest/gtest.h>

#include "remap/cml.hh"
#include "remap/remap_sim.hh"
#include "trace/vector_trace.hh"

namespace ccm
{
namespace
{

// ---- CmlBuffer ------------------------------------------------------

TEST(Cml, CountsPerPage)
{
    CmlBuffer cml(4096);
    cml.recordMiss(ByteAddr{0x1000});
    cml.recordMiss(ByteAddr{0x1FFF});   // same page
    cml.recordMiss(ByteAddr{0x2000});   // next page
    EXPECT_EQ(cml.count(ByteAddr{0x1800}), 2u);
    EXPECT_EQ(cml.count(ByteAddr{0x2000}), 1u);
    EXPECT_EQ(cml.count(ByteAddr{0x9000}), 0u);
}

TEST(Cml, PageOf)
{
    CmlBuffer cml(4096);
    EXPECT_EQ(cml.pageOf(ByteAddr{0x1000}), 1u);
    EXPECT_EQ(cml.pageOf(ByteAddr{0x1FFF}), 1u);
    EXPECT_EQ(cml.pageOf(ByteAddr{0x2000}), 2u);
}

TEST(Cml, HotPagesSortedByHeat)
{
    CmlBuffer cml(4096);
    for (int i = 0; i < 5; ++i)
        cml.recordMiss(ByteAddr{0x1000});
    for (int i = 0; i < 9; ++i)
        cml.recordMiss(ByteAddr{0x2000});
    cml.recordMiss(ByteAddr{0x3000});
    auto hot = cml.hotPages(5);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0], 2u);   // 9 misses
    EXPECT_EQ(hot[1], 1u);   // 5 misses
}

TEST(Cml, NewEpochClears)
{
    CmlBuffer cml(4096);
    cml.recordMiss(ByteAddr{0x1000});
    cml.newEpoch();
    EXPECT_EQ(cml.count(ByteAddr{0x1000}), 0u);
    EXPECT_TRUE(cml.hotPages(1).empty());
}

TEST(CmlDeath, BadPageSize)
{
    EXPECT_DEATH(CmlBuffer{5000}, "power of two");
}

// ---- PageRemapSim ---------------------------------------------------

/** Two pages that collide under default coloring, ping-ponged. */
VectorTrace
collidingPagesTrace(int iterations)
{
    VectorTrace t({}, {});
    // Pages 0 and 4: both color 0 in a 4-color (16KB/4KB) cache.
    for (int i = 0; i < iterations; ++i) {
        t.pushLoad(0x0000 + (i % 16) * 64);
        t.pushLoad(0x4000 + (i % 16) * 64);
    }
    return t;
}

TEST(RemapSim, StaticColoringThrashes)
{
    RemapConfig cfg;
    cfg.hotThreshold = ~0u;   // remapping disabled
    VectorTrace t = collidingPagesTrace(2000);
    RemapResult res = PageRemapSim(cfg).run(t);
    EXPECT_GT(res.missRate, 0.9);   // pure ping-pong
    EXPECT_EQ(res.remaps, 0u);
}

TEST(RemapSim, RecoloringFixesTheConflict)
{
    RemapConfig cfg;
    cfg.epochRefs = 500;
    cfg.hotThreshold = 64;
    VectorTrace t = collidingPagesTrace(2000);
    RemapResult res = PageRemapSim(cfg).run(t);
    EXPECT_GE(res.remaps, 1u);
    EXPECT_LT(res.missRate, 0.2);   // conflict resolved
}

TEST(RemapSim, ConflictOnlyIgnoresStreamingMisses)
{
    // A pure stream: all capacity misses.  Conflict-only counting
    // never remaps; all-miss counting may churn pages pointlessly.
    VectorTrace t({}, {});
    for (int i = 0; i < 20000; ++i)
        t.pushLoad(Addr(i) * 64);

    RemapConfig conflict_cfg;
    conflict_cfg.epochRefs = 2000;
    conflict_cfg.hotThreshold = 32;
    conflict_cfg.conflictOnly = true;
    RemapResult rc = PageRemapSim(conflict_cfg).run(t);
    EXPECT_EQ(rc.remaps, 0u);

    RemapConfig all_cfg = conflict_cfg;
    all_cfg.conflictOnly = false;
    RemapResult ra = PageRemapSim(all_cfg).run(t);
    EXPECT_GE(ra.remaps, rc.remaps);
    // Neither helps the miss rate (it's capacity-bound).
    EXPECT_NEAR(ra.missRate, rc.missRate, 0.05);
}

TEST(RemapSim, EffectiveMissRateChargesRemaps)
{
    RemapConfig cfg;
    cfg.epochRefs = 500;
    cfg.hotThreshold = 64;
    cfg.remapCostCycles = 100000;   // absurdly expensive pages
    VectorTrace t = collidingPagesTrace(2000);
    RemapResult res = PageRemapSim(cfg).run(t);
    EXPECT_GT(res.effectiveMissRate, res.missRate);
}

TEST(RemapSim, ReferencesCounted)
{
    RemapConfig cfg;
    VectorTrace t = collidingPagesTrace(10);
    RemapResult res = PageRemapSim(cfg).run(t);
    EXPECT_EQ(res.references, 20u);
}

TEST(RemapSimDeath, TinyCacheRejected)
{
    RemapConfig cfg;
    cfg.cacheBytes = 4096;   // one color
    EXPECT_DEATH(PageRemapSim{cfg}, "2 pages");
}

} // namespace
} // namespace ccm
