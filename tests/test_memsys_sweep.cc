/**
 * @file
 * Parameterized property sweep over the memory system's configuration
 * space: every assist mode crossed with cache geometries and buffer
 * sizes, checking the structural invariants every configuration must
 * satisfy on a mixed access pattern.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "hierarchy/memsys.hh"
#include "common/random.hh"

namespace ccm
{
namespace
{

struct SweepPoint
{
    AssistMode mode;
    std::size_t l1Bytes;
    unsigned l1Assoc;
    unsigned bufEntries;
};

class MemSysSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, unsigned>>
{
  protected:
    MemSysConfig
    makeConfig() const
    {
        auto [mode_i, geom_i, buf] = GetParam();
        MemSysConfig cfg;
        switch (mode_i) {
          case 0: cfg.mode = AssistMode::None; break;
          case 1:
            cfg.mode = AssistMode::VictimCache;
            cfg.victim.filterSwaps = true;
            cfg.victim.filterFills = true;
            break;
          case 2:
            cfg.mode = AssistMode::PrefetchBuffer;
            cfg.prefetch.filtered = true;
            break;
          case 3:
            cfg.mode = AssistMode::BypassBuffer;
            cfg.exclude.algo = ExcludeAlgo::Capacity;
            break;
          case 4:
            cfg.mode = AssistMode::Amb;
            cfg.amb.victimConflicts = true;
            cfg.amb.prefetchCapacity = true;
            cfg.amb.excludeCapacity = true;
            break;
          default:
            cfg.mode = AssistMode::PseudoAssoc;
            break;
        }
        switch (geom_i) {
          case 0: cfg.l1Bytes = 1024; cfg.l1Assoc = 1; break;
          case 1: cfg.l1Bytes = 4096; cfg.l1Assoc = 1; break;
          default:
            cfg.l1Bytes = 4096;
            // Pseudo-assoc requires direct-mapped geometry.
            cfg.l1Assoc =
                cfg.mode == AssistMode::PseudoAssoc ? 1 : 2;
            break;
        }
        cfg.l2Bytes = 64 * 1024;
        cfg.bufEntries = buf;
        return cfg;
    }
};

TEST_P(MemSysSweep, InvariantsUnderMixedTraffic)
{
    MemSysConfig cfg = makeConfig();
    MemorySystem m(cfg);

    // Mixed pattern: hot set, streaming, aliases, random, stores.
    Pcg32 rng(31);
    Cycle now = 0;
    const Count n = 6000;
    for (Count i = 0; i < n; ++i) {
        Addr a;
        switch (rng.below(5)) {
          case 0: a = 0x40 + rng.below(8) * 8; break;           // hot
          case 1: a = 0x10000 + (i % 512) * 64; break;          // stream
          case 2: a = 0x40 + rng.below(4) * cfg.l1Bytes; break; // alias
          case 3: a = Addr(rng.next()) % 0x200000; break;       // rand
          default: a = 0x8000 + rng.below(64) * 64; break;      // warm
        }
        AccessResult r = m.access(ByteAddr{i * 4}, ByteAddr{a},
                                  rng.chance(0.25), now);
        EXPECT_GE(r.ready, now) << "data before issue";
        EXPECT_LE(r.ready, now + 4000) << "absurd latency";
        now += rng.below(4);
        // Semi-closed loop: a finite window cannot run arbitrarily
        // far ahead of its outstanding data, so periodically sync to
        // the last completion (otherwise the single bus queues
        // unboundedly under this oversubscribed generator).
        if (i % 8 == 7)
            now = std::max(now, r.ready);
    }

    const MemStats &st = m.stats();
    EXPECT_EQ(st.accesses, n);
    EXPECT_EQ(st.loads + st.stores, n);
    EXPECT_EQ(st.l1Hits + st.l1Misses, n);
    EXPECT_EQ(st.conflictMisses + st.capacityMisses, st.l1Misses);
    EXPECT_LE(st.bufHits(), st.l1Misses);
    EXPECT_LE(st.prefUseful, st.prefIssued);
    EXPECT_LE(st.prefWasted, st.prefIssued);
    EXPECT_LE(st.l2Hits + st.l2Misses,
              st.l1Misses + st.prefIssued + st.writebacks);
    if (cfg.mode == AssistMode::None ||
        cfg.mode == AssistMode::PseudoAssoc) {
        EXPECT_EQ(st.bufHits(), 0u);
        EXPECT_EQ(st.prefIssued, 0u);
    }
    if (cfg.mode != AssistMode::BypassBuffer &&
        cfg.mode != AssistMode::Amb) {
        EXPECT_EQ(st.excluded, 0u);
    }

    // Buffer occupancy can never exceed its size.
    if (m.buffer()) {
        EXPECT_LE(m.buffer()->occupancy(), cfg.bufEntries);
    }
}

const char *const sweepModeNames[] = {"none", "victim", "prefetch",
                                      "bypass", "amb", "pseudo"};

INSTANTIATE_TEST_SUITE_P(
    Grid, MemSysSweep,
    ::testing::Combine(::testing::Range(0, 6),       // mode
                       ::testing::Range(0, 3),       // geometry
                       ::testing::Values(1u, 4u, 8u, 16u)),
    [](const auto &info) {
        return std::string(sweepModeNames[std::get<0>(info.param)]) +
               "_g" + std::to_string(std::get<1>(info.param)) +
               "_b" + std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace ccm
