/**
 * @file
 * Batched trace-delivery contract tests: for every TraceSource
 * implementation, the concatenation of nextBatch() results must
 * equal the next() sequence, for any batch partitioning — including
 * across FileTrace resync points and fault-injection decisions.
 * Also covers the BatchReader adapter and the process-wide batch
 * size knob.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mt/interleave.hh"
#include "trace/batch_reader.hh"
#include "trace/fault_trace.hh"
#include "trace/file_trace.hh"
#include "trace/vector_trace.hh"
#include "workloads/code_stream.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

bool
sameRecord(const MemRecord &a, const MemRecord &b)
{
    return a.pc == b.pc && a.addr == b.addr && a.type == b.type &&
           a.dependsOnPrevLoad == b.dependsOnPrevLoad;
}

std::vector<MemRecord>
drainNext(TraceSource &src)
{
    src.reset();
    std::vector<MemRecord> out;
    MemRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

std::vector<MemRecord>
drainBatched(TraceSource &src, std::size_t batch)
{
    src.reset();
    std::vector<MemRecord> out;
    std::vector<MemRecord> buf(batch);
    for (;;) {
        const std::size_t got = src.nextBatch(buf.data(), batch);
        // Contract: zero iff exhausted (a short nonzero batch
        // carries no end-of-trace meaning).
        if (got == 0)
            break;
        EXPECT_LE(got, batch) << src.name();
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
    }
    // Exhaustion is stable: further calls keep returning zero.
    EXPECT_EQ(src.nextBatch(buf.data(), batch), 0u) << src.name();
    return out;
}

/** Assert batched delivery matches next() for several partitions. */
void
expectBatchEquivalence(TraceSource &src)
{
    const std::vector<MemRecord> ref = drainNext(src);
    for (std::size_t batch : {std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{256},
                              std::size_t{1000}}) {
        const std::vector<MemRecord> got = drainBatched(src, batch);
        ASSERT_EQ(got.size(), ref.size())
            << src.name() << " batch " << batch;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_TRUE(sameRecord(got[i], ref[i]))
                << src.name() << " batch " << batch << " record " << i;
        }
    }
    // Mixing styles mid-stream is allowed: one record via next(),
    // the rest batched, must still concatenate to the same sequence.
    src.reset();
    MemRecord first;
    if (src.next(first)) {
        std::vector<MemRecord> mixed{first};
        std::vector<MemRecord> buf(7);
        std::size_t got;
        while ((got = src.nextBatch(buf.data(), buf.size())) > 0)
            mixed.insert(mixed.end(), buf.begin(),
                         buf.begin() + static_cast<std::ptrdiff_t>(got));
        ASSERT_EQ(mixed.size(), ref.size()) << src.name();
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_TRUE(sameRecord(mixed[i], ref[i])) << src.name();
    }
}

TEST(BatchEquivalence, VectorTrace)
{
    VectorTrace t;
    for (int i = 0; i < 1000; ++i) {
        t.pushLoad(Addr(0x1000 + 64 * i));
        if (i % 3 == 0)
            t.pushStore(Addr(0x8000 + 8 * i));
        if (i % 5 == 0)
            t.pushNonMem(2);
    }
    expectBatchEquivalence(t);
}

TEST(BatchEquivalence, EmptyVectorTrace)
{
    VectorTrace t;
    MemRecord buf[4];
    EXPECT_EQ(t.nextBatch(buf, 4), 0u);
}

TEST(BatchEquivalence, EverySyntheticWorkload)
{
    for (const std::string &name : workloadNames()) {
        auto wl = makeWorkload(name, 2000, 42);
        ASSERT_NE(wl, nullptr) << name;
        expectBatchEquivalence(*wl);
    }
}

TEST(BatchEquivalence, CodeStreamWorkload)
{
    CodeStreamWorkload wl(
        "loops",
        {{0x1000, 40}, {0x4000, 17}, {0x9000, 3}},
        {0, 1, 0, 2}, 5000);
    expectBatchEquivalence(wl);
}

TEST(BatchEquivalence, FaultInjectingSource)
{
    auto wl = makeWorkload("gcc", 3000, 7);
    VectorTrace clean = VectorTrace::capture(*wl);

    FaultPlan plan;
    plan.seed = 99;
    plan.bitFlipRate = 0.05;
    plan.dropRate = 0.03;
    plan.duplicateRate = 0.04;
    FaultInjectingSource dirty(clean, plan);
    // reset() reseeds the fault RNG, so every drain sees the same
    // per-record decisions and the dirty stream is reproducible.
    expectBatchEquivalence(dirty);
}

TEST(BatchEquivalence, FaultInjectingSourceTruncation)
{
    auto wl = makeWorkload("compress", 3000, 7);
    VectorTrace clean = VectorTrace::capture(*wl);

    FaultPlan plan;
    plan.seed = 5;
    plan.truncateAfter = 700;   // not a multiple of any batch size
    FaultInjectingSource dirty(clean, plan);
    expectBatchEquivalence(dirty);
    EXPECT_EQ(drainNext(dirty).size(), 700u);
}

TEST(BatchEquivalence, InterleavedTraceDefaultPath)
{
    // InterleavedTrace keeps the base-class record-at-a-time
    // nextBatch (its consumers read per-record thread attribution),
    // which must still satisfy the batch contract.
    VectorTrace a;
    VectorTrace b;
    for (int i = 0; i < 100; ++i) {
        a.pushLoad(Addr(0x1000 + 64 * i));
        b.pushStore(Addr(0x100000 + 64 * i));
    }
    std::vector<TraceSource *> srcs{&a, &b};
    InterleavedTrace t(srcs, 4);
    expectBatchEquivalence(t);
}

/** File-backed traces, including damaged ones. */
class BatchFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "ccm_batch_" +
               std::to_string(::getpid()) + ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    void
    writeBytes(const std::vector<std::uint8_t> &bytes)
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    }

    static std::vector<std::uint8_t>
    header()
    {
        std::vector<std::uint8_t> h{'C', 'C', 'M', 'T',
                                    'R', 'A', 'C', 'E'};
        h.push_back(1);                  // version 1, little endian
        for (int i = 0; i < 7; ++i)
            h.push_back(0);
        return h;
    }

    static std::vector<std::uint8_t>
    record(std::uint8_t fill, std::uint8_t type = 1)
    {
        std::vector<std::uint8_t> r(24, 0);
        for (int i = 0; i < 16; ++i)
            r[i] = fill;
        r[16] = type;
        return r;
    }

    static void
    append(std::vector<std::uint8_t> &to,
           const std::vector<std::uint8_t> &bytes)
    {
        to.insert(to.end(), bytes.begin(), bytes.end());
    }

    std::string path;
};

TEST_F(BatchFileTest, CleanFile)
{
    auto wl = makeWorkload("mgrid", 2000, 11);
    VectorTrace t = VectorTrace::capture(*wl);
    {
        TraceFileWriter w(path);
        w.writeAll(t);
    }
    TraceFileReader rd(path);
    expectBatchEquivalence(rd);
}

TEST_F(BatchFileTest, CorruptedFileResyncsAcrossBatchBoundaries)
{
    // Mid-file garbage between records 5 and 6: the resync happens at
    // load time, so batch partitions that straddle the damaged region
    // must deliver exactly the records the next() path delivers.
    auto bytes = header();
    for (std::uint8_t i = 1; i <= 5; ++i)
        append(bytes, record(i));
    append(bytes, std::vector<std::uint8_t>(24, 0xFF));
    for (std::uint8_t i = 6; i <= 13; ++i)
        append(bytes, record(i, 2));
    bytes.resize(bytes.size() - 3); // and a truncated tail
    writeBytes(bytes);

    TraceReadOptions opts;
    opts.corruptionBudget = 1;
    opts.tolerateTruncatedTail = true;
    opts.quiet = true;
    auto rd = TraceFileReader::open(path, opts);
    ASSERT_TRUE(rd.ok()) << rd.status().toString();
    EXPECT_EQ(rd.value()->readStats().resyncEvents, 1u);
    EXPECT_TRUE(rd.value()->readStats().truncatedTail);
    EXPECT_EQ(rd.value()->size(), 12u);

    expectBatchEquivalence(*rd.value());
}

TEST(BatchReaderTest, DeliversIdenticalStream)
{
    auto wl = makeWorkload("swim", 2000, 3);
    VectorTrace t = VectorTrace::capture(*wl);
    const std::vector<MemRecord> ref = drainNext(t);

    for (std::size_t batch : {std::size_t{1}, std::size_t{17},
                              std::size_t{256}}) {
        t.reset();
        BatchReader reader(t, batch);
        std::vector<MemRecord> got;
        MemRecord r;
        while (reader.next(r))
            got.push_back(r);
        ASSERT_EQ(got.size(), ref.size()) << "batch " << batch;
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_TRUE(sameRecord(got[i], ref[i])) << "batch " << batch;
    }
}

TEST(BatchReaderTest, BatchSizeKnobClampsAndRoundTrips)
{
    const std::size_t before = traceBatchSize();

    setTraceBatchSize(17);
    EXPECT_EQ(traceBatchSize(), 17u);
    setTraceBatchSize(0);                // 0 means record-at-a-time
    EXPECT_EQ(traceBatchSize(), 1u);
    setTraceBatchSize(100000);           // clamped to the buffer size
    EXPECT_EQ(traceBatchSize(), maxTraceBatch);

    setTraceBatchSize(before);
    EXPECT_EQ(traceBatchSize(), before);
}

} // namespace
} // namespace ccm
