/**
 * @file
 * Unit tests for the Miss Classification Table — the paper's core
 * mechanism — and the four conflict filters of §3.
 */

#include <gtest/gtest.h>

#include "mct/mct.hh"

namespace ccm
{
namespace
{

TEST(Mct, ColdTableClassifiesCapacity)
{
    MissClassificationTable mct(4);
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0x123}), MissClass::Capacity);
    EXPECT_FALSE(mct.isConflictMiss(SetIndex{2}, Tag{0x7}));
}

TEST(Mct, MatchingEvictedTagIsConflict)
{
    MissClassificationTable mct(4);
    mct.recordEviction(SetIndex{1}, Tag{0xAB});
    EXPECT_EQ(mct.classify(SetIndex{1}, Tag{0xAB}), MissClass::Conflict);
    EXPECT_EQ(mct.classify(SetIndex{1}, Tag{0xAC}), MissClass::Capacity);
    // Other sets unaffected.
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0xAB}), MissClass::Capacity);
}

TEST(Mct, OnlyMostRecentEvictionRemembered)
{
    MissClassificationTable mct(2);
    mct.recordEviction(SetIndex{0}, Tag{0x1});
    mct.recordEviction(SetIndex{0}, Tag{0x2});
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0x1}), MissClass::Capacity);
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0x2}), MissClass::Conflict);
}

TEST(Mct, PaperScenario)
{
    // "Cache line B is accessed, resulting in a cache miss, and
    //  evicts line A from the cache.  The next miss to the same cache
    //  set is an access to line A.  The second miss is a conflict
    //  miss."
    MissClassificationTable mct(256);
    const std::size_t set = 17;
    const Addr tag_a = 100, tag_b = 200;
    // B misses, evicting A:
    EXPECT_EQ(mct.classify(SetIndex{set}, Tag{tag_b}), MissClass::Capacity);
    mct.recordEviction(SetIndex{set}, Tag{tag_a});
    // A misses next: conflict.
    EXPECT_EQ(mct.classify(SetIndex{set}, Tag{tag_a}), MissClass::Conflict);
}

TEST(Mct, InvalidateEntryForgetsSet)
{
    MissClassificationTable mct(4);
    mct.recordEviction(SetIndex{3}, Tag{0x9});
    mct.invalidateEntry(SetIndex{3});
    EXPECT_EQ(mct.classify(SetIndex{3}, Tag{0x9}), MissClass::Capacity);
}

TEST(Mct, ClearForgetsEverything)
{
    MissClassificationTable mct(4);
    mct.recordEviction(SetIndex{0}, Tag{1});
    mct.recordEviction(SetIndex{1}, Tag{2});
    mct.clear();
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{1}), MissClass::Capacity);
    EXPECT_EQ(mct.classify(SetIndex{1}, Tag{2}), MissClass::Capacity);
}

TEST(Mct, PartialTagsMatchOnLowBits)
{
    MissClassificationTable mct(4, 8);
    mct.recordEviction(SetIndex{0}, Tag{0xABCD});
    // Same low 8 bits -> (false) conflict match.
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0xFFCD}), MissClass::Conflict);
    // Different low bits -> capacity.
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0xABCE}), MissClass::Capacity);
}

TEST(Mct, FullTagHasNoFalseMatches)
{
    MissClassificationTable mct(4, 0);
    mct.recordEviction(SetIndex{0}, Tag{0xABCD});
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0xFFCD}), MissClass::Capacity);
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0xABCD}), MissClass::Conflict);
}

TEST(Mct, SingleBitTagMatchesHalfTheTags)
{
    MissClassificationTable mct(1, 1);
    mct.recordEviction(SetIndex{0}, Tag{0x0});
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0x2}), MissClass::Conflict);  // even
    EXPECT_EQ(mct.classify(SetIndex{0}, Tag{0x3}), MissClass::Capacity);  // odd
}

TEST(Mct, StorageBitsAccounting)
{
    // 10 bits + valid, 256 sets -> paper's "1.25KB of storage for a
    // direct-mapped 64KB cache" is (10+...) per entry; we count the
    // valid bit explicitly.
    MissClassificationTable mct(256, 10);
    EXPECT_EQ(mct.storageBits(), 256u * 11u);
    MissClassificationTable full(256, 0);
    EXPECT_EQ(full.storageBits(), 256u * 65u);
}

TEST(Mct, TagBitsAccessor)
{
    EXPECT_EQ(MissClassificationTable(4, 12).tagBits(), 12u);
    EXPECT_EQ(MissClassificationTable(4).tagBits(), 0u);
}

TEST(Mct, ValidateRejectsWithoutDying)
{
    EXPECT_TRUE(MissClassificationTable::validate(4, 12).isOk());
    EXPECT_TRUE(MissClassificationTable::validate(4, 0).isOk());
    EXPECT_EQ(MissClassificationTable::validate(0, 0).code(),
              ErrorCode::BadConfig);
    EXPECT_EQ(MissClassificationTable::validate(4, 65).code(),
              ErrorCode::BadConfig);
}

TEST(MctDeath, ZeroSetsRejected)
{
    EXPECT_DEATH(MissClassificationTable(0), "at least one");
}

TEST(MctDeath, OversizedTagRejected)
{
    EXPECT_DEATH(MissClassificationTable(4, 65), "out of range");
}

// ---- conflict filters (§3) ----------------------------------------

TEST(Filters, InUsesEvictedBitOnly)
{
    using F = ConflictFilter;
    EXPECT_TRUE(filterSaysConflict(F::In, false, true));
    EXPECT_FALSE(filterSaysConflict(F::In, true, false));
}

TEST(Filters, OutUsesNewMissOnly)
{
    using F = ConflictFilter;
    EXPECT_TRUE(filterSaysConflict(F::Out, true, false));
    EXPECT_FALSE(filterSaysConflict(F::Out, false, true));
}

TEST(Filters, AndRequiresBoth)
{
    using F = ConflictFilter;
    EXPECT_TRUE(filterSaysConflict(F::And, true, true));
    EXPECT_FALSE(filterSaysConflict(F::And, true, false));
    EXPECT_FALSE(filterSaysConflict(F::And, false, true));
    EXPECT_FALSE(filterSaysConflict(F::And, false, false));
}

TEST(Filters, OrAcceptsEither)
{
    using F = ConflictFilter;
    EXPECT_TRUE(filterSaysConflict(F::Or, true, false));
    EXPECT_TRUE(filterSaysConflict(F::Or, false, true));
    EXPECT_TRUE(filterSaysConflict(F::Or, true, true));
    EXPECT_FALSE(filterSaysConflict(F::Or, false, false));
}

TEST(Filters, OrIsMostLiberalAndMostConservative)
{
    // For every input combination: And => Out/In => Or (implication
    // chain the policies rely on).
    using F = ConflictFilter;
    for (bool n : {false, true}) {
        for (bool e : {false, true}) {
            if (filterSaysConflict(F::And, n, e)) {
                EXPECT_TRUE(filterSaysConflict(F::Out, n, e));
                EXPECT_TRUE(filterSaysConflict(F::In, n, e));
            }
            if (filterSaysConflict(F::Out, n, e) ||
                filterSaysConflict(F::In, n, e)) {
                EXPECT_TRUE(filterSaysConflict(F::Or, n, e));
            }
        }
    }
}

TEST(Filters, Names)
{
    EXPECT_EQ(toString(ConflictFilter::In), "in-conflict");
    EXPECT_EQ(toString(ConflictFilter::Out), "out-conflict");
    EXPECT_EQ(toString(ConflictFilter::And), "and-conflict");
    EXPECT_EQ(toString(ConflictFilter::Or), "or-conflict");
}

TEST(MissClassNames, ToString)
{
    EXPECT_EQ(toString(MissClass::Conflict), "conflict");
    EXPECT_EQ(toString(MissClass::Capacity), "capacity");
    EXPECT_EQ(toString(MissClass::Compulsory), "compulsory");
    EXPECT_TRUE(isConflict(MissClass::Conflict));
    EXPECT_FALSE(isConflict(MissClass::Compulsory));
}


/**
 * Golden partial-tag truncation results.
 *
 * The sequence and expected classifications below were produced by
 * the pre-strong-types implementation; they pin down the stored-tag
 * masking rule (low @c tagBits bits, full tag when 0) so that any
 * refactor of the Tag domain that changes truncation behavior fails
 * loudly here rather than silently skewing Figure 2.
 */
TEST(Mct, PartialTagTruncationGolden)
{
    struct Step
    {
        Addr evict;     // tag recorded as evicted (before the probe)
        Addr probe;     // tag of the next miss in the same set
    };
    // Tags chosen to collide in the low 4 and 8 bits in known ways.
    const Step steps[] = {
        {0x00000'0AB, 0xFFFF0'0AB},  // equal low 16 bits
        {0x12345'678, 0x00005'678},  // equal low 16 bits
        {0x00000'00F, 0x00000'01F},  // differ at bit 4
        {0xABCDE'F01, 0xABCDE'F01},  // identical full tags
        {0x00000'100, 0x00000'200},  // equal low 8 bits (both zero)
    };
    struct Expect
    {
        unsigned bits;
        bool conflict[5];
    };
    const Expect golden[] = {
        {0,  {false, false, false, true, false}},
        {4,  {true, true, true, true, true}},
        {8,  {true, true, false, true, true}},
        {12, {true, true, false, true, false}},
        {16, {true, true, false, true, false}},
    };
    for (const Expect &e : golden) {
        for (std::size_t i = 0; i < std::size(steps); ++i) {
            MissClassificationTable mct(1, e.bits);
            mct.recordEviction(SetIndex{0}, Tag{steps[i].evict});
            EXPECT_EQ(mct.isConflictMiss(SetIndex{0},
                                         Tag{steps[i].probe}),
                      e.conflict[i])
                << "tagBits=" << e.bits << " step=" << i;
        }
    }
}

/** Tag-width sweep: with w bits the false-match rate over random
 *  tags is ~2^-w. */
class MctTagWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MctTagWidth, FalseMatchRateShrinksWithWidth)
{
    unsigned bits = GetParam();
    MissClassificationTable mct(1, bits);
    mct.recordEviction(SetIndex{0}, Tag{0x12345678});

    // Count matches over tags differing from the stored one.
    unsigned matches = 0;
    const unsigned trials = 4096;
    for (unsigned i = 1; i <= trials; ++i) {
        Addr t = 0x12345678 ^ (i * 2654435761u);
        if (mct.classify(SetIndex{0}, Tag{t}) == MissClass::Conflict)
            ++matches;
    }
    double rate = double(matches) / trials;
    double expected =
        (bits == 0 || bits >= 12) ? 0.0 : 1.0 / double(1u << bits);
    EXPECT_NEAR(rate, expected, expected * 0.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Widths, MctTagWidth,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 0));

} // namespace
} // namespace ccm
