/**
 * @file
 * Unit tests for the trace layer: records, in-memory traces, and the
 * binary trace-file round trip.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "trace/file_trace.hh"
#include "trace/vector_trace.hh"
#include "trace/wire.hh"

namespace ccm
{
namespace
{

TEST(WireCodec, PackedRecordIsLittleEndianOnAnyHost)
{
    MemRecord r;
    r.pc = 0x0102030405060708ULL;
    r.addr = 0x1112131415161718ULL;
    r.type = RecordType::Load;
    r.dependsOnPrevLoad = true;

    std::uint8_t buf[wire::recordBytes];
    wire::packRecord(r, buf);

    // The exact bytes the format doc promises ("All integers are
    // little-endian"), independent of the host's endianness.
    const std::uint8_t expect[wire::recordBytes] = {
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // pc LE
        0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // addr LE
        0x01,                                           // Load
        0x01,                                           // depends flag
        0,    0,    0,    0,    0,    0,                // padding
    };
    for (std::size_t i = 0; i < wire::recordBytes; ++i)
        EXPECT_EQ(buf[i], expect[i]) << "byte " << i;

    const MemRecord back = wire::unpackRecord(buf);
    EXPECT_EQ(back.pc, r.pc);
    EXPECT_EQ(back.addr, r.addr);
    EXPECT_EQ(back.type, r.type);
    EXPECT_TRUE(back.dependsOnPrevLoad);
    EXPECT_TRUE(wire::plausibleRecord(buf));
}

TEST(MemRecord, TypePredicates)
{
    MemRecord r;
    EXPECT_FALSE(r.isMem());
    r.type = RecordType::Load;
    EXPECT_TRUE(r.isMem());
    EXPECT_TRUE(r.isLoad());
    EXPECT_FALSE(r.isStore());
    r.type = RecordType::Store;
    EXPECT_TRUE(r.isStore());
    EXPECT_FALSE(r.isLoad());
}

TEST(VectorTrace, PushAndReplay)
{
    VectorTrace t;
    t.pushLoad(0x100);
    t.pushStore(0x200);
    t.pushNonMem(2);
    EXPECT_EQ(t.size(), 4u);

    MemRecord r;
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_TRUE(r.isLoad());
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.addr, 0x200u);
    EXPECT_TRUE(r.isStore());
    ASSERT_TRUE(t.next(r));
    EXPECT_FALSE(r.isMem());
    ASSERT_TRUE(t.next(r));
    EXPECT_FALSE(t.next(r));
}

TEST(VectorTrace, ResetReplaysFromStart)
{
    VectorTrace t;
    t.pushLoad(0xAAA);
    MemRecord r;
    ASSERT_TRUE(t.next(r));
    ASSERT_FALSE(t.next(r));
    t.reset();
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.addr, 0xAAAu);
}

TEST(VectorTrace, ExplicitPcIsKept)
{
    VectorTrace t;
    t.pushLoad(0x100, 0x42);
    MemRecord r;
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.pc, 0x42u);
}

TEST(VectorTrace, DefaultPcAdvances)
{
    VectorTrace t;
    t.pushLoad(0x100);
    t.pushLoad(0x200);
    EXPECT_NE(t.at(0).pc, t.at(1).pc);
}

TEST(VectorTrace, CaptureCopiesSourceAndName)
{
    VectorTrace src({}, {});
    src.setName("mini");
    src.pushLoad(0x10);
    src.pushStore(0x20);
    VectorTrace copy = VectorTrace::capture(src);
    EXPECT_EQ(copy.name(), "mini");
    EXPECT_EQ(copy.size(), 2u);
    EXPECT_EQ(copy.at(0).addr, 0x10u);
    EXPECT_EQ(copy.at(1).addr, 0x20u);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs suites in parallel.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "ccm_trace_" +
               info->name() + ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, RoundTripPreservesRecords)
{
    {
        TraceFileWriter w(path);
        MemRecord r;
        r.pc = 0x1000;
        r.addr = 0xdeadbeef;
        r.type = RecordType::Load;
        r.dependsOnPrevLoad = true;
        w.write(r);
        r.pc = 0x1004;
        r.addr = 0x12345678;
        r.type = RecordType::Store;
        r.dependsOnPrevLoad = false;
        w.write(r);
    }
    TraceFileReader rd(path);
    EXPECT_EQ(rd.size(), 2u);
    MemRecord r;
    ASSERT_TRUE(rd.next(r));
    EXPECT_EQ(r.pc, 0x1000u);
    EXPECT_EQ(r.addr, 0xdeadbeefu);
    EXPECT_TRUE(r.isLoad());
    EXPECT_TRUE(r.dependsOnPrevLoad);
    ASSERT_TRUE(rd.next(r));
    EXPECT_EQ(r.addr, 0x12345678u);
    EXPECT_TRUE(r.isStore());
    EXPECT_FALSE(r.dependsOnPrevLoad);
    EXPECT_FALSE(rd.next(r));
}

TEST_F(TraceFileTest, WriteAllDrainsASource)
{
    VectorTrace src;
    for (int i = 0; i < 100; ++i)
        src.pushLoad(0x1000 + i * 64);
    {
        TraceFileWriter w(path);
        EXPECT_EQ(w.writeAll(src), 100u);
    }
    TraceFileReader rd(path);
    EXPECT_EQ(rd.size(), 100u);
    MemRecord r;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(rd.next(r));
        EXPECT_EQ(r.addr, 0x1000u + i * 64);
    }
}

TEST_F(TraceFileTest, ReaderResets)
{
    {
        TraceFileWriter w(path);
        MemRecord r;
        r.type = RecordType::Load;
        r.addr = 0x40;
        w.write(r);
    }
    TraceFileReader rd(path);
    MemRecord r;
    ASSERT_TRUE(rd.next(r));
    ASSERT_FALSE(rd.next(r));
    rd.reset();
    ASSERT_TRUE(rd.next(r));
    EXPECT_EQ(r.addr, 0x40u);
}

TEST_F(TraceFileTest, WriterCreateReportsUnwritablePath)
{
    auto w = TraceFileWriter::create("/nonexistent/dir/out.bin");
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.status().code(), ErrorCode::IoError);
    // The status carries the OS diagnostic, not just the path.
    EXPECT_NE(w.status().message().find("("), std::string::npos);
}

TEST_F(TraceFileTest, WriterCloseReportsStatusAndIsIdempotent)
{
    auto w = TraceFileWriter::create(path);
    ASSERT_TRUE(w.ok());
    MemRecord r;
    r.type = RecordType::Load;
    r.addr = 0x40;
    EXPECT_TRUE(w.value()->writeChecked(r).isOk());
    EXPECT_TRUE(w.value()->close().isOk());
    EXPECT_TRUE(w.value()->close().isOk()); // second close is a no-op

    // Writes after close are recoverable errors via the checked path.
    Status s = w.value()->writeChecked(r);
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::IoError);
}

TEST_F(TraceFileTest, OpenReturnsReaderWithCleanStats)
{
    {
        TraceFileWriter w(path);
        MemRecord r;
        r.type = RecordType::Store;
        r.addr = 0x80;
        w.write(r);
    }
    auto rd = TraceFileReader::open(path);
    ASSERT_TRUE(rd.ok()) << rd.status().toString();
    EXPECT_EQ(rd.value()->size(), 1u);
    EXPECT_TRUE(rd.value()->readStats().clean());
    EXPECT_EQ(rd.value()->readStats().recordsRead, 1u);
}

TEST_F(TraceFileTest, ReadStatsDumpFormat)
{
    {
        TraceFileWriter w(path);
        MemRecord r;
        r.type = RecordType::Load;
        w.write(r);
    }
    TraceFileReader rd(path);
    std::ostringstream os;
    rd.readStats().dump(os, "t");
    std::string s = os.str();
    EXPECT_NE(s.find("t.records_read 1"), std::string::npos);
    EXPECT_NE(s.find("t.resync_events 0"), std::string::npos);
    EXPECT_NE(s.find("t.bytes_skipped 0"), std::string::npos);
    EXPECT_NE(s.find("t.truncated_tail 0"), std::string::npos);
    EXPECT_NE(s.find("t.first_defect none"), std::string::npos);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileReader("/nonexistent/nope.bin"),
                 "cannot open");
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fwrite("NOTATRACEFILE!!!", 1, 16, f);
        std::fclose(f);
    }
    EXPECT_DEATH(TraceFileReader{path}, "bad trace magic");
}

TEST_F(TraceFileTest, TruncatedRecordIsFatal)
{
    {
        TraceFileWriter w(path);
        MemRecord r;
        r.type = RecordType::Load;
        w.write(r);
    }
    // Chop off the last byte.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), len - 1), 0);
    EXPECT_DEATH(TraceFileReader{path}, "partial record");
}

} // namespace
} // namespace ccm
