/**
 * @file
 * Unit tests for the exclusion structures: the Johnson & Hwu memory
 * access table and the miss-classification history table.
 */

#include <gtest/gtest.h>

#include "exclude/history.hh"
#include "exclude/mat.hh"
#include "exclude/tyson.hh"

namespace ccm
{
namespace
{

// ---- MAT -----------------------------------------------------------

TEST(Mat, CountsAccumulatePerRegion)
{
    MemoryAccessTable mat;
    for (Addr i = 0; i < 10; ++i)
        mat.recordAccess(ByteAddr{0x10000 + i});   // same 1KB region
    EXPECT_EQ(mat.countFor(ByteAddr{0x10000}), 10u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x20000}), 0u);
}

TEST(Mat, RegionGranularity)
{
    MemoryAccessTable mat;
    mat.recordAccess(ByteAddr{0x10000});
    mat.recordAccess(ByteAddr{0x103FF});  // same 1KB region
    mat.recordAccess(ByteAddr{0x10400});  // next region
    EXPECT_EQ(mat.countFor(ByteAddr{0x10000}), 2u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x10400}), 1u);
}

TEST(Mat, BypassWhenVictimRegionHotter)
{
    MemoryAccessTable mat;
    for (int i = 0; i < 50; ++i)
        mat.recordAccess(ByteAddr{0x20000});       // hot region
    mat.recordAccess(ByteAddr{0x30000});           // cold region
    EXPECT_TRUE(mat.shouldBypass(ByteAddr{0x30000}, LineAddr{0x20000}));
    EXPECT_FALSE(mat.shouldBypass(ByteAddr{0x20000}, LineAddr{0x30000}));
}

TEST(Mat, NoBypassOnEqualCounts)
{
    MemoryAccessTable mat;
    mat.recordAccess(ByteAddr{0x20000});
    mat.recordAccess(ByteAddr{0x30000});
    EXPECT_FALSE(mat.shouldBypass(ByteAddr{0x30000}, LineAddr{0x20000}));
}

TEST(Mat, DecayHalvesCounts)
{
    MemoryAccessTable mat(1024, 1024, /*decay*/ 100);
    for (int i = 0; i < 99; ++i)
        mat.recordAccess(ByteAddr{0x20000});
    EXPECT_EQ(mat.countFor(ByteAddr{0x20000}), 99u);
    mat.recordAccess(ByteAddr{0x20000});           // triggers decay
    EXPECT_EQ(mat.countFor(ByteAddr{0x20000}), 50u);
}

TEST(Mat, CollisionHysteresisProtectsHotRegion)
{
    // Two regions mapping to the same entry: the hot one keeps it
    // until the contender out-accesses it.
    MemoryAccessTable mat(1, 1024, 1 << 30);   // one entry: all alias
    for (int i = 0; i < 10; ++i)
        mat.recordAccess(ByteAddr{0x1000});
    mat.recordAccess(ByteAddr{0x9000});  // contender decrements, doesn't steal
    EXPECT_EQ(mat.countFor(ByteAddr{0x1000}), 9u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x9000}), 0u);
    // Persistent contender eventually takes over.
    for (int i = 0; i < 20; ++i)
        mat.recordAccess(ByteAddr{0x9000});
    EXPECT_GT(mat.countFor(ByteAddr{0x9000}), 0u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x1000}), 0u);
}

TEST(Mat, CounterSaturates)
{
    MemoryAccessTable mat(1024, 1024, 1 << 30);
    for (int i = 0; i < 10000; ++i)
        mat.recordAccess(ByteAddr{0x20000});
    EXPECT_LE(mat.countFor(ByteAddr{0x20000}), 4095u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x20000}), 4095u);
}

TEST(Mat, PowerOfTwoSpacedRegionsDoNotAllAlias)
{
    // Regions exactly 1MB apart (the table span) fold to different
    // indices thanks to the XOR fold.
    MemoryAccessTable mat;
    mat.recordAccess(ByteAddr{0x40000000});
    mat.recordAccess(ByteAddr{0x40100000});
    mat.recordAccess(ByteAddr{0x40200000});
    EXPECT_EQ(mat.countFor(ByteAddr{0x40000000}), 1u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x40100000}), 1u);
    EXPECT_EQ(mat.countFor(ByteAddr{0x40200000}), 1u);
}

TEST(Mat, ClearZeroes)
{
    MemoryAccessTable mat;
    mat.recordAccess(ByteAddr{0x1234});
    mat.clear();
    EXPECT_EQ(mat.countFor(ByteAddr{0x1234}), 0u);
}

TEST(MatDeath, BadGeometry)
{
    EXPECT_DEATH(MemoryAccessTable(1000, 1024), "power of two");
    EXPECT_DEATH(MemoryAccessTable(1024, 1000), "power of two");
}

// ---- history table --------------------------------------------------

TEST(History, NeutralByDefault)
{
    MissHistoryTable h;
    EXPECT_FALSE(h.conflictHistory(ByteAddr{0x1000}));
    EXPECT_FALSE(h.capacityHistory(ByteAddr{0x1000}));
}

TEST(History, ConsistentConflictsSetHistory)
{
    MissHistoryTable h;
    for (int i = 0; i < 4; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Conflict);
    EXPECT_TRUE(h.conflictHistory(ByteAddr{0x1000}));
    EXPECT_FALSE(h.capacityHistory(ByteAddr{0x1000}));
}

TEST(History, ConsistentCapacitiesSetHistory)
{
    MissHistoryTable h;
    for (int i = 0; i < 4; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Capacity);
    EXPECT_TRUE(h.capacityHistory(ByteAddr{0x1000}));
    EXPECT_FALSE(h.conflictHistory(ByteAddr{0x1000}));
}

TEST(History, CompulsoryCountsAsCapacity)
{
    MissHistoryTable h;
    for (int i = 0; i < 4; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Compulsory);
    EXPECT_TRUE(h.capacityHistory(ByteAddr{0x1000}));
}

TEST(History, MixedHistoryExcludesNothing)
{
    MissHistoryTable h;
    for (int i = 0; i < 20; ++i)
        h.recordMiss(ByteAddr{0x1000}, i % 2 == 0 ? MissClass::Conflict
                                        : MissClass::Capacity);
    EXPECT_FALSE(h.conflictHistory(ByteAddr{0x1000}));
    EXPECT_FALSE(h.capacityHistory(ByteAddr{0x1000}));
}

TEST(History, HistoryFlipsWithBehaviour)
{
    MissHistoryTable h;
    for (int i = 0; i < 8; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Conflict);
    EXPECT_TRUE(h.conflictHistory(ByteAddr{0x1000}));
    for (int i = 0; i < 8; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Capacity);
    EXPECT_TRUE(h.capacityHistory(ByteAddr{0x1000}));
    EXPECT_FALSE(h.conflictHistory(ByteAddr{0x1000}));
}

TEST(History, RegionsIndependent)
{
    MissHistoryTable h;
    for (int i = 0; i < 4; ++i) {
        h.recordMiss(ByteAddr{0x1000}, MissClass::Conflict);
        h.recordMiss(ByteAddr{0x9000}, MissClass::Capacity);
    }
    EXPECT_TRUE(h.conflictHistory(ByteAddr{0x1000}));
    EXPECT_TRUE(h.capacityHistory(ByteAddr{0x9000}));
}

TEST(History, DisplacedRegionStartsNeutral)
{
    MissHistoryTable h;
    for (int i = 0; i < 6; ++i)
        h.recordMiss(ByteAddr{0x1000}, MissClass::Conflict);
    // A region aliasing to the same entry takes over fresh.
    // (With folding, find an alias by brute force.)
    h.clear();
    h.recordMiss(ByteAddr{0x1000}, MissClass::Conflict);
    EXPECT_FALSE(h.conflictHistory(ByteAddr{0x1000}));  // one miss isn't history
}

TEST(HistoryDeath, BadGeometry)
{
    EXPECT_DEATH(MissHistoryTable(1000, 1024), "power of two");
}

// ---- Tyson PC-indexed exclusion --------------------------------------

TEST(Tyson, FreshPcNeverBypasses)
{
    PcMissTable t;
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x400}));
}

TEST(Tyson, ConsistentMissesTriggerBypass)
{
    PcMissTable t;
    for (int i = 0; i < 4; ++i)
        t.recordOutcome(ByteAddr{0x400}, true);
    EXPECT_TRUE(t.shouldBypass(ByteAddr{0x400}));
    EXPECT_EQ(t.counterFor(ByteAddr{0x400}), 3u);
}

TEST(Tyson, HitsPullCounterBack)
{
    PcMissTable t;
    for (int i = 0; i < 4; ++i)
        t.recordOutcome(ByteAddr{0x400}, true);
    t.recordOutcome(ByteAddr{0x400}, false);
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x400}));   // 2-bit hysteresis
    t.recordOutcome(ByteAddr{0x400}, true);
    EXPECT_TRUE(t.shouldBypass(ByteAddr{0x400}));
}

TEST(Tyson, MostlyHittingPcStaysAllocating)
{
    PcMissTable t;
    for (int i = 0; i < 100; ++i)
        t.recordOutcome(ByteAddr{0x400}, i % 4 == 0);   // 25% misses
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x400}));
}

TEST(Tyson, PcsTrackedIndependently)
{
    PcMissTable t;
    for (int i = 0; i < 4; ++i) {
        t.recordOutcome(ByteAddr{0x400}, true);
        t.recordOutcome(ByteAddr{0x404}, false);
    }
    EXPECT_TRUE(t.shouldBypass(ByteAddr{0x400}));
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x404}));
}

TEST(Tyson, DisplacedEntryStartsFresh)
{
    PcMissTable t(16);   // small: force a collision by construction
    for (int i = 0; i < 4; ++i)
        t.recordOutcome(ByteAddr{0x400}, true);
    // Find an aliasing pc (same folded index, different tag).
    Addr alias = 0x400 + 16 * 4;
    t.recordOutcome(ByteAddr{alias}, true);
    // The alias replaced the entry with a fresh counter.
    EXPECT_FALSE(t.shouldBypass(ByteAddr{alias}));
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x400}));   // tag mismatch now
}

TEST(Tyson, ClearResets)
{
    PcMissTable t;
    for (int i = 0; i < 4; ++i)
        t.recordOutcome(ByteAddr{0x400}, true);
    t.clear();
    EXPECT_FALSE(t.shouldBypass(ByteAddr{0x400}));
    EXPECT_EQ(t.counterFor(ByteAddr{0x400}), 0u);
}

TEST(TysonDeath, BadGeometry)
{
    EXPECT_DEATH(PcMissTable{100}, "power of two");
}

} // namespace
} // namespace ccm
