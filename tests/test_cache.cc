/**
 * @file
 * Unit tests for the set-associative cache: hits/misses, replacement
 * policies, conflict bits, victim selection, and statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "cache/cache.hh"
#include "common/random.hh"

namespace ccm
{
namespace
{

/** Tiny 2-set, 2-way cache: easy to reason about exactly. */
CacheGeometry
tinyGeom()
{
    return CacheGeometry(256, 2, 64);  // 2 sets x 2 ways x 64B
}

/** Address in set @p set with tag index @p t. */
ByteAddr
mkAddr(const CacheGeometry &g, std::size_t set, Addr t)
{
    return g.recompose(Tag{t}, SetIndex{set}).asByte();
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyGeom());
    EXPECT_FALSE(c.access(ByteAddr{0x0}, false));
    c.fill(ByteAddr{0x0}, false, false);
    EXPECT_TRUE(c.access(ByteAddr{0x0}, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, HitAnywhereInLine)
{
    Cache c(tinyGeom());
    c.fill(ByteAddr{0x40}, false, false);
    EXPECT_TRUE(c.access(ByteAddr{0x40}, false));
    EXPECT_TRUE(c.access(ByteAddr{0x7F}, false));
    EXPECT_FALSE(c.access(ByteAddr{0x80}, false));
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.fill(a, false, false);
    c.fill(b, false, false);
    // a is LRU.  Probing a must not refresh it.
    EXPECT_NE(c.probe(a), nullptr);
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, g.lineOf(a));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.fill(a, false, false);
    c.fill(b, false, false);
    c.access(a, false);          // refresh a; b becomes LRU
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, g.lineOf(b));
    EXPECT_NE(c.probe(a), nullptr);
    EXPECT_NE(c.probe(d), nullptr);
}

TEST(Cache, FifoIgnoresAccessRecency)
{
    CacheGeometry g = tinyGeom();
    Cache c(g, ReplPolicy::Fifo);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.fill(a, false, false);
    c.fill(b, false, false);
    c.access(a, false);          // would save a under LRU
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, g.lineOf(a));  // FIFO evicts oldest fill
}

TEST(Cache, RandomReplacementEvictsSomeValidWay)
{
    CacheGeometry g = tinyGeom();
    Cache c(g, ReplPolicy::Random, 99);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2),
             d = mkAddr(g, 0, 3);
    c.fill(a, false, false);
    c.fill(b, false, false);
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.lineAddr == g.lineOf(a) ||
                ev.lineAddr == g.lineOf(b));
    EXPECT_NE(c.probe(d), nullptr);
}

TEST(Cache, EmptyWayUsedBeforeEviction)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1), b = mkAddr(g, 0, 2);
    EXPECT_FALSE(c.fill(a, false, false).valid);
    EXPECT_FALSE(c.fill(b, false, false).valid);
    EXPECT_NE(c.probe(a), nullptr);
    EXPECT_NE(c.probe(b), nullptr);
}

TEST(Cache, VictimForMatchesSubsequentFill)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 1, 1), b = mkAddr(g, 1, 2),
             d = mkAddr(g, 1, 3);
    c.fill(a, false, false);
    c.fill(b, false, false);
    const CacheLine *victim = c.victimFor(d);
    ASSERT_NE(victim, nullptr);
    LineAddr predicted = g.recompose(victim->tag, g.setOf(d));
    FillResult ev = c.fill(d, false, false);
    EXPECT_EQ(ev.lineAddr, predicted);
}

TEST(Cache, VictimForNullWhenSetHasRoom)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    c.fill(mkAddr(g, 0, 1), false, false);
    EXPECT_EQ(c.victimFor(mkAddr(g, 0, 2)), nullptr);
}

TEST(Cache, ConflictBitStoredAndEvicted)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1);
    c.fill(a, true, false);
    EXPECT_TRUE(c.probe(a)->conflictBit);

    ByteAddr b = mkAddr(g, 0, 2), d = mkAddr(g, 0, 3);
    c.fill(b, false, false);
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, g.lineOf(a));
    EXPECT_TRUE(ev.conflictBit);
}

TEST(Cache, StoreSetsDirtyAndEvictionReportsIt)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1);
    c.fill(a, false, false);
    c.access(a, true);   // dirtying store hit
    ByteAddr b = mkAddr(g, 0, 2), d = mkAddr(g, 0, 3);
    c.fill(b, false, false);
    FillResult ev = c.fill(d, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, FillWithStoreIsDirty)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    c.fill(mkAddr(g, 0, 1), false, true);
    EXPECT_TRUE(c.probe(mkAddr(g, 0, 1))->dirty);
}

TEST(Cache, InvalidateRemovesLine)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1);
    c.fill(a, false, false);
    EXPECT_TRUE(c.invalidate(a));
    EXPECT_EQ(c.probe(a), nullptr);
    EXPECT_FALSE(c.invalidate(a));
}

TEST(Cache, OccupancyTracksFills)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    EXPECT_EQ(c.occupancy(), 0u);
    c.fill(mkAddr(g, 0, 1), false, false);
    c.fill(mkAddr(g, 1, 1), false, false);
    EXPECT_EQ(c.occupancy(), 2u);
    c.invalidate(mkAddr(g, 0, 1));
    EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, ClearResetsEverything)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    c.fill(mkAddr(g, 0, 1), false, false);
    c.access(mkAddr(g, 0, 1), false);
    c.clear();
    EXPECT_EQ(c.occupancy(), 0u);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.fills(), 0u);
}

TEST(Cache, FillWayPlacesExactly)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 7);
    c.fillWay(a, WayIndex{1}, true, false);
    EXPECT_TRUE(c.lineAt(SetIndex{0}, WayIndex{1}).valid);
    EXPECT_FALSE(c.lineAt(SetIndex{0}, WayIndex{0}).valid);
    EXPECT_EQ(c.lineAddrAt(SetIndex{0}, WayIndex{1}), g.lineOf(a));
    EXPECT_EQ(c.lineAddrAt(SetIndex{0}, WayIndex{0}),
              invalidLineAddr);
}

TEST(Cache, FindLineAllowsBitMutation)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1);
    c.fill(a, false, false);
    CacheLine *l = c.findLine(a);
    ASSERT_NE(l, nullptr);
    l->conflictBit = true;
    EXPECT_TRUE(c.probe(a)->conflictBit);
}

TEST(Cache, MissRateComputation)
{
    CacheGeometry g = tinyGeom();
    Cache c(g);
    ByteAddr a = mkAddr(g, 0, 1);
    c.access(a, false);          // miss
    c.fill(a, false, false);
    c.access(a, false);          // hit
    c.access(a, false);          // hit
    EXPECT_NEAR(c.missRate(), 1.0 / 3.0, 1e-9);
}

TEST(CacheDeath, FillWayOutOfRange)
{
    Cache c(tinyGeom());
    EXPECT_DEATH(c.fillWay(ByteAddr{0}, WayIndex{5}, false, false),
                 "out of range");
}

TEST(CacheDeath, LineAtOutOfRange)
{
    Cache c(tinyGeom());
    EXPECT_DEATH(c.lineAt(SetIndex{99}, WayIndex{0}),
                 "out of range");
}

/**
 * Property sweep: a direct-mapped cache of N lines, accessed with a
 * cyclic pattern of N+1 distinct lines mapping to distinct sets,
 * never hits (classic capacity thrash), while a pattern of N lines
 * always hits after warmup.
 */
class CacheThrash : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CacheThrash, ExactWorkingSetFits)
{
    std::size_t cache_bytes = GetParam();
    CacheGeometry g(cache_bytes, 1, 64);
    Cache c(g);
    std::size_t n = g.numLines();

    // Warmup: one pass over exactly n distinct lines.
    for (std::size_t i = 0; i < n; ++i) {
        ByteAddr a{i * 64};
        if (!c.access(a, false))
            c.fill(a, false, false);
    }
    // Every subsequent pass hits.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_TRUE(c.access(ByteAddr{i * 64}, false));
    }
}

TEST_P(CacheThrash, AliasedLinesAlwaysMiss)
{
    std::size_t cache_bytes = GetParam();
    CacheGeometry g(cache_bytes, 1, 64);
    Cache c(g);
    // Two lines 1 cache-size apart ping-pong forever.
    ByteAddr a{0x40}, b = a.advancedBy(cache_bytes);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(c.access(a, false));
        c.fill(a, false, false);
        EXPECT_FALSE(c.access(b, false));
        c.fill(b, false, false);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheThrash,
                         ::testing::Values(1024, 4096, 16 * 1024));

/**
 * Reference-model property test: under a random access/fill/
 * invalidate mix, the cache's hit/miss outcomes and LRU choices
 * match a straightforward per-set model.
 */
class CacheModelCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(CacheModelCheck, MatchesReferenceModel)
{
    auto [bytes, assoc] = GetParam();
    CacheGeometry g(bytes, assoc, 64);
    Cache cache(g);

    // Reference: per set, a recency-ordered list (front = MRU).
    std::vector<std::list<LineAddr>> model(g.numSets());
    auto model_find = [&](LineAddr line) {
        auto &s = model[g.setOf(line).value()];
        return std::find(s.begin(), s.end(), line);
    };

    Pcg32 rng(77);
    for (int step = 0; step < 30000; ++step) {
        LineAddr line{(Addr(rng.below(64)) * bytes / 4) &
                      ~Addr{63}};
        auto &s = model[g.setOf(line).value()];
        switch (rng.below(4)) {
          case 0:
          case 1: {  // access
            bool hit = cache.access(line.asByte(), false);
            auto it = model_find(line);
            EXPECT_EQ(hit, it != s.end());
            if (it != s.end()) {
                s.erase(it);
                s.push_front(line);
            }
            break;
          }
          case 2: {  // fill (if not resident)
            if (model_find(line) != s.end())
                break;
            FillResult ev = cache.fill(line.asByte(), false, false);
            if (s.size() == assoc) {
                ASSERT_TRUE(ev.valid);
                EXPECT_EQ(ev.lineAddr, s.back());  // LRU victim
                s.pop_back();
            } else {
                EXPECT_FALSE(ev.valid);
            }
            s.push_front(line);
            break;
          }
          default: {  // invalidate
            bool had = model_find(line) != s.end();
            EXPECT_EQ(cache.invalidate(line.asByte()), had);
            if (had)
                s.erase(model_find(line));
            break;
          }
        }
    }

    // Final residency agrees exactly.
    std::size_t model_lines = 0;
    for (const auto &s : model) {
        model_lines += s.size();
        for (LineAddr line : s)
            EXPECT_NE(cache.probe(line.asByte()), nullptr);
    }
    EXPECT_EQ(cache.occupancy(), model_lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelCheck,
    ::testing::Combine(::testing::Values(std::size_t{1024},
                                         std::size_t{4096}),
                       ::testing::Values(1u, 2u, 4u)));

} // namespace
} // namespace ccm
