/**
 * @file
 * Tests for the parallel suite execution engine: the worker pool
 * itself, sequential-vs-parallel report equality, failure isolation
 * under concurrency, and the hook-delivery contract of
 * sim/parallel.hh.  This binary is additionally run under
 * ThreadSanitizer by tools/ci.sh (the "tsan" preset), so the stress
 * tests double as data-race detectors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/parallel.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

// ---- ThreadPool ----------------------------------------------------

TEST(ThreadPool, ResolveJobCount)
{
    EXPECT_EQ(resolveJobCount(1), 1u);
    EXPECT_EQ(resolveJobCount(7), 7u);
    // 0 = hardware concurrency (with a nonzero fallback).
    EXPECT_GE(resolveJobCount(0), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.workers(), 8u);

    constexpr std::size_t n = 2000;
    std::vector<int> hits(n, 0);
    std::atomic<std::size_t> total{0};
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&hits, &total, i] {
            // Disjoint slots: no lock needed, and tsan verifies it.
            hits[i] += 1;
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(total.load(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "task " << i;
}

TEST(ThreadPool, WaitIdleSeparatesWaves)
{
    // Two waves through one pool: waitIdle is a usable barrier, and
    // the second wave reads what the first wrote (publication).
    ThreadPool pool(4);
    constexpr std::size_t n = 512;
    std::vector<std::size_t> first(n, 0), second(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&first, i] { first[i] = i + 1; });
    pool.waitIdle();
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&first, &second, i] { second[i] = first[i] * 2; });
    pool.waitIdle();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(second[i], (i + 1) * 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<std::size_t> ran{0};
    {
        ThreadPool pool(2);
        for (std::size_t i = 0; i < 64; ++i)
            pool.submit([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        // No waitIdle: the destructor must drain, not drop.
    }
    EXPECT_EQ(ran.load(), 64u);
}

// ---- Sequential vs parallel report equality ------------------------

void
expectRowsEqual(const SuiteRow &a, const SuiteRow &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.status.code(), b.status.code());
    EXPECT_EQ(a.status.message(), b.status.message());
    EXPECT_EQ(a.out.sim.cycles, b.out.sim.cycles);
    EXPECT_EQ(a.out.sim.instructions, b.out.sim.instructions);
    EXPECT_EQ(a.out.sim.memRefs, b.out.sim.memRefs);
    MemStats::forEachField(
        [&](const char *name, Count MemStats::*f) {
            EXPECT_EQ(a.out.mem.*f, b.out.mem.*f)
                << a.workload << " counter " << name;
        });
    // Heat digests: the per-set histograms the heatmap section is
    // built from.
    EXPECT_EQ(a.out.heat.sets, b.out.heat.sets);
    EXPECT_EQ(a.out.heat.l1Misses, b.out.heat.l1Misses);
    EXPECT_EQ(a.out.heat.l1Evictions, b.out.heat.l1Evictions);
    EXPECT_EQ(a.out.heat.mctLookups, b.out.heat.mctLookups);
    EXPECT_EQ(a.out.heat.mctConflicts, b.out.heat.mctConflicts);
}

TEST(ParallelSuite, BitIdenticalToSequentialAcrossJobCounts)
{
    const std::vector<std::string> names = workloadNames();
    const SystemConfig cfg = ambConfig(true, true, true);
    auto factory = [](const std::string &name) {
        return makeWorkloadChecked(name, 3000, 7);
    };

    SuiteReport sequential = runSuite(names, factory, cfg);
    ASSERT_EQ(sequential.rows.size(), names.size());

    for (std::size_t jobs : {1u, 2u, 8u}) {
        ParallelSuiteOptions opts;
        opts.jobs = jobs;
        SuiteReport parallel =
            runSuiteParallel(names, factory, cfg, opts);
        ASSERT_EQ(parallel.rows.size(), names.size())
            << "jobs=" << jobs;
        for (std::size_t i = 0; i < names.size(); ++i) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " row " +
                         std::to_string(i));
            // Row order matches names regardless of completion order.
            EXPECT_EQ(parallel.rows[i].workload, names[i]);
            expectRowsEqual(sequential.rows[i], parallel.rows[i]);
        }
    }
}

TEST(ParallelSuite, RowsCarryWallTime)
{
    SuiteReport report =
        runSuite({"go", "perl"}, 4000, 3, baselineConfig());
    double total = 0;
    for (const auto &row : report.rows) {
        EXPECT_GE(row.wallSeconds, 0.0);
        total += row.wallSeconds;
    }
    EXPECT_GT(total, 0.0);
}

// ---- Failure isolation under concurrency ---------------------------

TEST(ParallelSuite, ErroredRowsStayIsolatedUnderConcurrency)
{
    const std::vector<std::string> names = workloadNames();
    auto factory = [&](const std::string &name)
        -> Expected<std::unique_ptr<TraceSource>> {
        if (name == "gcc")
            return Status::corruptTrace("bad trace magic in gcc.bin");
        if (name == "swim")
            throw std::runtime_error("factory exploded");
        return makeWorkloadChecked(name, 2000, 3);
    };

    ParallelSuiteOptions opts;
    opts.jobs = 8;
    SuiteReport report =
        runSuiteParallel(names, factory, baselineConfig(), opts);

    ASSERT_EQ(report.rows.size(), names.size());
    EXPECT_EQ(report.failures(), 2u);
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(report.rows[i].workload, names[i]);

    const SuiteRow *corrupt = report.row("gcc");
    ASSERT_NE(corrupt, nullptr);
    EXPECT_EQ(corrupt->status.code(), ErrorCode::CorruptTrace);
    EXPECT_NE(corrupt->status.message().find("workload 'gcc'"),
              std::string::npos);

    const SuiteRow *thrown = report.row("swim");
    ASSERT_NE(thrown, nullptr);
    EXPECT_EQ(thrown->status.code(), ErrorCode::Internal);

    // Every other row completed despite its neighbours dying.
    for (const auto &row : report.rows) {
        if (row.workload == "gcc" || row.workload == "swim")
            continue;
        EXPECT_TRUE(row.ok()) << row.workload;
        EXPECT_GT(row.out.sim.cycles, 0u);
    }
}

// ---- Hook-delivery contract ----------------------------------------

TEST(ParallelSuite, InstrumentCallsAreSerialized)
{
    // Contract point 1: the instrument may mutate shared state with
    // no locking of its own.  Under tsan (ci.sh) this test fails if
    // two instrument bodies ever overlap.
    const std::vector<std::string> names = workloadNames();
    std::vector<std::string> seen; // deliberately unsynchronized
    int in_flight = 0;

    ParallelSuiteOptions opts;
    opts.jobs = 8;
    opts.instrument = [&](const std::string &name, MemorySystem &) {
        ++in_flight;
        EXPECT_EQ(in_flight, 1) << "overlapping instrument calls";
        seen.push_back(name);
        --in_flight;
    };
    SuiteReport report = runSuiteParallel(
        names,
        [](const std::string &name) {
            return makeWorkloadChecked(name, 1000, 3);
        },
        baselineConfig(), opts);

    EXPECT_TRUE(report.allOk());
    ASSERT_EQ(seen.size(), names.size());
    // Every workload was instrumented exactly once (order is the
    // completion order, not names order).
    for (const auto &name : names)
        EXPECT_NE(std::find(seen.begin(), seen.end(), name),
                  seen.end())
            << name;
}

TEST(ParallelSuite, OnRowDoneDeliversInNamesOrderOnCallerThread)
{
    const std::vector<std::string> names = workloadNames();
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::string> delivered;

    ParallelSuiteOptions opts;
    opts.jobs = 8;
    opts.onRowDone = [&](const SuiteRow &row) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        delivered.push_back(row.workload);
    };
    SuiteReport report = runSuiteParallel(
        names,
        [](const std::string &name) {
            return makeWorkloadChecked(name, 1000, 3);
        },
        baselineConfig(), opts);

    EXPECT_TRUE(report.allOk());
    ASSERT_EQ(delivered.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(delivered[i], names[i]);
}

TEST(ParallelSuite, JobsOneMatchesSequentialIncludingCallbacks)
{
    // jobs == 1 must be today's behaviour exactly, callbacks and all.
    std::vector<std::string> instrumented;
    std::vector<std::string> delivered;
    ParallelSuiteOptions opts;
    opts.jobs = 1;
    opts.instrument = [&](const std::string &name, MemorySystem &) {
        instrumented.push_back(name);
    };
    opts.onRowDone = [&](const SuiteRow &row) {
        delivered.push_back(row.workload);
    };
    const std::vector<std::string> names = {"go", "perl", "tomcatv"};
    SuiteReport report = runSuiteParallel(
        names,
        [](const std::string &name) {
            return makeWorkloadChecked(name, 2000, 3);
        },
        baselineConfig(), opts);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(instrumented, names);
    EXPECT_EQ(delivered, names);
}

} // namespace
} // namespace ccm
