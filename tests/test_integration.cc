/**
 * @file
 * Cross-module integration tests: full timing runs over the workload
 * suite for every §5 architecture, checking system-level invariants
 * and the qualitative relationships the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "mct/classify_run.hh"
#include "sim/experiment.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace ccm
{
namespace
{

constexpr std::size_t refs = 30000;

VectorTrace
capture(const std::string &name)
{
    auto wl = makeWorkload(name, refs, 42);
    return VectorTrace::capture(*wl);
}

// ---- invariants over (workload x architecture) ---------------------

struct ModeSpec
{
    const char *label;
    SystemConfig cfg;
};

std::vector<ModeSpec>
allModes()
{
    return {
        {"baseline", baselineConfig()},
        {"victim", victimConfig(false, false)},
        {"victim-filtered", victimConfig(true, true)},
        {"prefetch", prefetchConfig(false)},
        {"prefetch-filtered", prefetchConfig(true)},
        {"exclude-capacity", excludeConfig(ExcludeAlgo::Capacity)},
        {"exclude-mat", excludeConfig(ExcludeAlgo::Mat)},
        {"pseudo", pseudoConfig(true)},
        {"two-way", twoWayConfig()},
        {"amb-victpref", ambConfig(true, true, false)},
        {"amb-all", ambConfig(true, true, true)},
    };
}

class ArchWorkload
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(ArchWorkload, StatsInvariantsHold)
{
    auto [wl_name, mode_idx] = GetParam();
    ModeSpec mode = allModes()[mode_idx];
    VectorTrace trace = capture(wl_name);
    RunOutput r = runTiming(trace, mode.cfg);

    const MemStats &st = r.mem;
    EXPECT_EQ(st.accesses, refs) << mode.label;
    EXPECT_EQ(st.loads + st.stores, st.accesses);
    EXPECT_EQ(st.l1Hits + st.l1Misses, st.accesses);
    EXPECT_LE(st.bufHits(), st.l1Misses);
    EXPECT_EQ(st.conflictMisses + st.capacityMisses, st.l1Misses);
    EXPECT_LE(st.prefUseful, st.prefIssued);
    EXPECT_LE(st.prefWasted, st.prefIssued);

    EXPECT_GT(r.sim.cycles, 0u);
    EXPECT_EQ(r.sim.memRefs, refs);
    EXPECT_GT(r.sim.ipc, 0.0);
    EXPECT_LE(r.sim.ipc, 8.0);

    // Timing runs are deterministic.
    RunOutput again = runTiming(trace, mode.cfg);
    EXPECT_EQ(again.sim.cycles, r.sim.cycles);
    EXPECT_EQ(again.mem.l1Misses, st.l1Misses);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArchWorkload,
    ::testing::Combine(::testing::Values("tomcatv", "swim", "go",
                                         "compress", "li"),
                       ::testing::Range(0, 11)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param));
    });

// ---- qualitative paper relationships -------------------------------

TEST(Integration, TwoWayBeatsDirectMappedOnConflictHeavyCode)
{
    VectorTrace t = capture("tomcatv");
    RunOutput dm = runTiming(t, baselineConfig());
    RunOutput tw = runTiming(t, twoWayConfig());
    EXPECT_LT(tw.mem.l1Misses, dm.mem.l1Misses);
}

TEST(Integration, VictimCacheCatchesTomcatvConflicts)
{
    VectorTrace t = capture("tomcatv");
    RunOutput base = runTiming(t, baselineConfig());
    RunOutput vict = runTiming(t, victimConfig(true, true));
    // A large share of the misses become buffer hits.
    EXPECT_GT(vict.mem.bufHits(), vict.mem.l1Misses / 4);
    EXPECT_GT(speedup(base, vict), 1.0);
}

TEST(Integration, VictimCacheBarelyHelpsStreamingCode)
{
    VectorTrace t = capture("swim");
    RunOutput vict = runTiming(t, victimConfig(false, false));
    EXPECT_LT(vict.mem.bufHitRatePct(), 1.0);
}

TEST(Integration, PrefetchCoversStreamingCode)
{
    VectorTrace t = capture("swim");
    RunOutput base = runTiming(t, baselineConfig());
    RunOutput pref = runTiming(t, prefetchConfig(false));
    EXPECT_GT(pref.mem.prefAccuracyPct(), 95.0);
    EXPECT_GT(pref.mem.prefCoveragePct(), 90.0);
    EXPECT_GT(speedup(base, pref), 1.0);
}

TEST(Integration, FilteringRaisesPrefetchAccuracy)
{
    // On a conflict-heavy workload, or-conflict filtering cuts
    // useless prefetches.
    VectorTrace t = capture("go");
    RunOutput plain = runTiming(t, prefetchConfig(false));
    RunOutput filt =
        runTiming(t, prefetchConfig(true, ConflictFilter::Or));
    EXPECT_GT(filt.mem.prefAccuracyPct(),
              plain.mem.prefAccuracyPct());
    EXPECT_LT(filt.mem.prefIssued, plain.mem.prefIssued);
}

TEST(Integration, NoSwapPolicyEliminatesSwaps)
{
    VectorTrace t = capture("tomcatv");
    RunOutput trad = runTiming(t, victimConfig(false, false));
    RunOutput noswap = runTiming(t, victimConfig(true, false));
    EXPECT_GT(trad.mem.swaps, 0u);
    EXPECT_LT(noswap.mem.swapRatePct(),
              trad.mem.swapRatePct() / 5.0);
    // Hits shift from the data cache into the buffer.
    EXPECT_GE(noswap.mem.bufHitRatePct(), trad.mem.bufHitRatePct());
}

TEST(Integration, FillFilterCutsFills)
{
    VectorTrace t = capture("compress");
    RunOutput trad = runTiming(t, victimConfig(false, false));
    RunOutput nofill = runTiming(t, victimConfig(false, true));
    EXPECT_LT(nofill.mem.victimFills, trad.mem.victimFills);
}

TEST(Integration, CapacityExclusionRaisesTotalHitRate)
{
    VectorTrace t = capture("compress");
    RunOutput base = runTiming(t, baselineConfig());
    RunOutput excl = runTiming(t, excludeConfig(ExcludeAlgo::Capacity));
    EXPECT_GT(excl.mem.totalHitRatePct(),
              base.mem.totalHitRatePct());
}

TEST(Integration, AmbBeatsSinglePoliciesOnMixedWorkload)
{
    // tomcatv has both conflict misses (victim fodder) and capacity
    // misses (prefetch fodder): the combination wins (Figure 6).
    VectorTrace t = capture("tomcatv");
    RunOutput base = runTiming(t, baselineConfig());
    double vict = speedup(base, runTiming(t, ambSingleVict()));
    double pref = speedup(base, runTiming(t, ambSinglePref()));
    double both = speedup(base, runTiming(t, ambConfig(true, true,
                                                       false)));
    EXPECT_GT(both, vict);
    EXPECT_GT(both, pref);
}

TEST(Integration, PseudoAssocTracksTwoWayMissRate)
{
    for (const char *name : {"tomcatv", "go"}) {
        VectorTrace t = capture(name);
        RunOutput ps = runTiming(t, pseudoConfig(false));
        RunOutput tw = runTiming(t, twoWayConfig());
        double ps_miss = pct(ps.mem.l1Misses, ps.mem.accesses);
        double tw_miss = pct(tw.mem.l1Misses, tw.mem.accesses);
        EXPECT_NEAR(ps_miss, tw_miss, 3.0) << name;
    }
}

TEST(Integration, MctAccuracyHighOnSuiteSample)
{
    // The headline claim: the vast majority of misses classified in
    // agreement with the classic definition.
    for (const char *name : {"tomcatv", "compress", "vortex"}) {
        auto wl = makeWorkload(name, 100000, 42);
        ClassifyConfig cfg;
        ClassifyResult res = classifyRun(*wl, cfg);
        EXPECT_GT(res.scorer.overallAccuracy(), 80.0) << name;
    }
}

TEST(Integration, SlowBusHurtsEveryone)
{
    VectorTrace t = capture("swim");
    SystemConfig fast = baselineConfig();
    SystemConfig slow = baselineConfig();
    slow.mem.busCyclesPerTransfer = 16;
    RunOutput rf = runTiming(t, fast);
    RunOutput rs = runTiming(t, slow);
    EXPECT_GT(rs.sim.cycles, rf.sim.cycles);
}

TEST(Integration, LargerBufferNeverHurtsMuch)
{
    VectorTrace t = capture("li");
    RunOutput b8 = runTiming(t, ambConfig(true, true, true, 8));
    RunOutput b16 = runTiming(t, ambConfig(true, true, true, 16));
    EXPECT_GE(b16.mem.totalHitRatePct(),
              b8.mem.totalHitRatePct() - 0.5);
}

} // namespace
} // namespace ccm
