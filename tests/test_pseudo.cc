/**
 * @file
 * Unit tests for the pseudo-associative (column-associative) cache
 * and its MCT-guided replacement (§5.4).
 */

#include <gtest/gtest.h>

#include "pseudo/pseudo_cache.hh"

namespace ccm
{
namespace
{

using Kind = PseudoAccess::Kind;

/** 1KB direct-mapped: 16 sets; secondary flips bit 3 of the index. */
CacheGeometry
geom()
{
    return CacheGeometry(1024, 1, 64);
}

/** Address with set index @p set and tag @p t. */
ByteAddr
mkAddr(std::size_t set, Addr t)
{
    return geom().recompose(Tag{t}, SetIndex{set}).asByte();
}

TEST(Pseudo, ColdMissThenPrimaryHit)
{
    PseudoAssocCache c(geom(), true);
    EXPECT_EQ(c.access(mkAddr(0, 1), false).kind, Kind::Miss);
    EXPECT_EQ(c.access(mkAddr(0, 1), false).kind, Kind::PrimaryHit);
    EXPECT_EQ(c.primaryHits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Pseudo, SecondSetMemberDemotesToSecondary)
{
    PseudoAssocCache c(geom(), true);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2);
    c.access(a, false);   // a in primary slot 0
    c.access(b, false);   // a demoted to secondary (set 8), b primary
    // a now hits in its secondary location: swap back.
    PseudoAccess res = c.access(a, false);
    EXPECT_EQ(res.kind, Kind::SecondaryHit);
    EXPECT_EQ(c.swaps(), 1u);
    // And immediately again: now primary.
    EXPECT_EQ(c.access(a, false).kind, Kind::PrimaryHit);
    // b was swapped to the secondary slot.
    EXPECT_EQ(c.access(b, false).kind, Kind::SecondaryHit);
}

TEST(Pseudo, PairAbsorbedLikeTwoWay)
{
    // After warmup, an aliased pair never misses (it 2-way fits).
    PseudoAssocCache c(geom(), true);
    ByteAddr a = mkAddr(3, 1), b = mkAddr(3, 2);
    c.access(a, false);
    c.access(b, false);
    for (int i = 0; i < 20; ++i) {
        EXPECT_NE(c.access(a, false).kind, Kind::Miss);
        EXPECT_NE(c.access(b, false).kind, Kind::Miss);
    }
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Pseudo, ProbeSeesBothLocations)
{
    PseudoAssocCache c(geom(), true);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2);
    c.access(a, false);
    c.access(b, false);
    EXPECT_TRUE(c.probe(a));   // in secondary
    EXPECT_TRUE(c.probe(b));   // in primary
    EXPECT_FALSE(c.probe(mkAddr(0, 3)));
}

TEST(Pseudo, EvictionReported)
{
    PseudoAssocCache c(geom(), false);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2), d = mkAddr(0, 3);
    c.access(a, true);    // dirty
    c.access(b, false);
    PseudoAccess res = c.access(d, false);
    EXPECT_EQ(res.kind, Kind::Miss);
    ASSERT_TRUE(res.evictedValid);
    // LRU between candidates picks a (older).
    EXPECT_EQ(res.evictedLineAddr, geom().lineOf(a));
    EXPECT_TRUE(res.evictedDirty);
}

TEST(Pseudo, SecondaryResidentCanConflictWithItsOwnPrimary)
{
    // A line displaced to its secondary set competes with lines whose
    // primary is that set.
    PseudoAssocCache c(geom(), false);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2);
    c.access(a, false);
    c.access(b, false);         // a displaced to set 8
    ByteAddr x = mkAddr(8, 7);      // primary = set 8
    c.access(x, false);         // x takes set 8's primary slot...
    EXPECT_TRUE(c.probe(x));
}

TEST(Pseudo, MctVetoProtectsConflictLine)
{
    PseudoAssocCache c(geom(), true);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2), s1 = mkAddr(0, 3);

    // Warm the pair, then force an eviction/re-fetch of a so its
    // conflict bit is set: a evicted, then misses again -> MCT match.
    c.access(a, false);
    c.access(b, false);          // slots: primary=b, secondary=a
    c.access(s1, false);         // evicts LRU=a; MCT[0]=a
    PseudoAccess res = c.access(a, false);
    EXPECT_EQ(res.kind, Kind::Miss);
    EXPECT_TRUE(res.wasConflict);   // MCT caught it
    // a re-installed with its conflict bit set.  Now a stream line
    // arrives: candidates are a (bit=1) and whichever of b/s1
    // remains (bit=0): the veto evicts the unprotected one.
    ByteAddr s2 = mkAddr(0, 4);
    c.access(s2, false);
    EXPECT_TRUE(c.probe(a));     // protected
    EXPECT_GT(c.replacementOverrides(), 0u);
}

TEST(Pseudo, VetoIsOneShot)
{
    // After a veto spends the survivor's bit, plain LRU resumes.
    PseudoAssocCache c(geom(), true);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2), s1 = mkAddr(0, 3);
    c.access(a, false);
    c.access(b, false);
    c.access(s1, false);
    c.access(a, false);          // conflict, bit set
    c.access(mkAddr(0, 4), false);  // veto protects a, clears bit
    Count overrides = c.replacementOverrides();
    c.access(mkAddr(0, 5), false);  // no bits left: LRU
    // a unprotected now; the new miss may have evicted it.
    EXPECT_EQ(c.replacementOverrides(), overrides);
}

TEST(Pseudo, BaselineIgnoresMct)
{
    PseudoAssocCache c(geom(), false);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2), s1 = mkAddr(0, 3);
    c.access(a, false);
    c.access(b, false);
    c.access(s1, false);
    PseudoAccess res = c.access(a, false);
    EXPECT_FALSE(res.wasConflict);   // baseline never classifies
    EXPECT_EQ(c.replacementOverrides(), 0u);
}

TEST(Pseudo, StatsAndClear)
{
    PseudoAssocCache c(geom(), true);
    c.access(mkAddr(0, 1), false);
    c.access(mkAddr(0, 1), false);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_NEAR(c.missRate(), 0.5, 1e-12);
    c.clear();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(mkAddr(0, 1)));
}

TEST(Pseudo, DirtyBitTravelsThroughSwap)
{
    PseudoAssocCache c(geom(), false);
    ByteAddr a = mkAddr(0, 1), b = mkAddr(0, 2);
    c.access(a, true);           // dirty store miss
    c.access(b, false);          // a -> secondary
    c.access(a, false);          // secondary hit: swap back
    c.access(b, false);          // b secondary hit: swap
    // Evict a (LRU after the last swap pattern) and check dirtiness
    // survived the moves.
    PseudoAccess res = c.access(mkAddr(0, 3), false);
    ASSERT_TRUE(res.evictedValid);
    if (res.evictedLineAddr == geom().lineOf(a)) {
        EXPECT_TRUE(res.evictedDirty);
    }
}

TEST(PseudoDeath, RequiresDirectMappedGeometry)
{
    CacheGeometry g2(1024, 2, 64);
    EXPECT_DEATH(PseudoAssocCache(g2, true), "direct-mapped");
}

} // namespace
} // namespace ccm
