/**
 * @file
 * ccm-top — live monitor for a running ccm-serve daemon
 * (docs/SERVING.md, docs/OBSERVABILITY.md).
 *
 * Polls the daemon's control socket, combining the kind:"serve" stats
 * document ("stats") with the kind:"metrics" telemetry document
 * ("metrics json") into one refreshing terminal dashboard:
 *
 *   ccm-top --control /run/ccm-ctl.sock --interval-ms 1000
 *
 * Each frame shows the daemon summary (version, uptime, generation,
 * drain state), stream totals with a records/s rate computed from the
 * delta between polls, classify/decode latency percentiles from the
 * histogram metrics, and a per-stream table of the active pipelines.
 *
 * --once prints a single machine-readable "key value" snapshot and
 * exits — the mode CI uses to assert the telemetry plane end to end
 * without a tty:
 *
 *   ccm-top --control /run/ccm-ctl.sock --once
 *
 * Exit status: 0 on success, 1 usage errors, 2 when the control
 * socket cannot be reached or a reply fails to parse.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "obs/json.hh"
#include "serve/client.hh"

namespace
{

using namespace ccm;

void
usage()
{
    std::cout <<
        "usage: ccm-top --control PATH [options]\n"
        "options:\n"
        "  --interval-ms N   poll period (default 1000)\n"
        "  --iterations N    stop after N frames (default: forever)\n"
        "  --once            one plain-text snapshot, no refresh\n"
        "  --no-clear        do not clear the screen between frames\n"
        "  --timeout-ms N    per-request reply timeout (default 5000)\n"
        "  --log-level L     trace|debug|info|warn|error|off\n";
}

std::uint64_t
parseNum(const char *flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        CCM_LOG_ERROR(flag, " needs a number, got '", text, "'");
        std::exit(1);
    }
    return v;
}

struct Options
{
    std::string controlPath;
    std::int64_t intervalMs = 1000;
    std::uint64_t iterations = 0; ///< 0 = run until interrupted
    bool once = false;
    bool clearScreen = true;
    serve::ClientOptions client;
};

/** One poll of the daemon: both documents, parsed. */
struct Sample
{
    obs::JsonValue stats;   ///< kind:"serve"
    obs::JsonValue metrics; ///< kind:"metrics"
};

Expected<obs::JsonValue>
fetchDocument(const Options &o, const std::string &command)
{
    auto reply =
        serve::controlRequest(o.controlPath, command, o.client);
    if (!reply.ok())
        return reply.status().withContext("control '" + command +
                                          "'");
    auto doc = obs::JsonValue::parse(reply.value());
    if (!doc.ok())
        return doc.status().withContext("reply to '" + command + "'");
    return doc.take();
}

Expected<Sample>
poll(const Options &o)
{
    Sample s;
    auto stats = fetchDocument(o, "stats");
    if (!stats.ok())
        return stats.status();
    s.stats = stats.take();
    auto metrics = fetchDocument(o, "metrics json");
    if (!metrics.ok())
        return metrics.status();
    s.metrics = metrics.take();
    return s;
}

/** Find one metric entry by name; nullptr when absent. */
const obs::JsonValue *
findMetric(const obs::JsonValue &doc, std::string_view name)
{
    const obs::JsonValue *arr = doc.get("metrics");
    if (arr == nullptr || !arr->isArray())
        return nullptr;
    for (const auto &m : arr->elements()) {
        if (m.at("name").asString() == name)
            return &m;
    }
    return nullptr;
}

std::string
fmtDouble(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::string
fmtUptime(double seconds)
{
    const auto total = static_cast<std::uint64_t>(seconds);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu:%02llu:%02llu",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>(total / 60 % 60),
                  static_cast<unsigned long long>(total % 60));
    return buf;
}

/** "p50=12 p95=340 p99=801 (n=5021)" for a histogram metric. */
std::string
fmtHistogram(const obs::JsonValue *m)
{
    if (m == nullptr)
        return "-";
    return "p50=" + fmtDouble(m->at("p50").asDouble(), 0) +
           " p95=" + fmtDouble(m->at("p95").asDouble(), 0) +
           " p99=" + fmtDouble(m->at("p99").asDouble(), 0) +
           " (n=" + std::to_string(m->at("count").asU64()) + ")";
}

void
renderFrame(const Options &o, const Sample &s, double records_per_s)
{
    const obs::JsonValue &daemon = s.stats.at("daemon");
    std::string out;
    if (o.clearScreen)
        out += "\x1b[2J\x1b[H";

    out += "ccm-top — ccm-serve " +
           daemon.at("version").asString() + "  up " +
           fmtUptime(daemon.at("uptime_seconds").asDouble()) +
           "  arch " + daemon.at("arch").asString() + "  gen " +
           std::to_string(daemon.at("config_generation").asU64()) +
           (daemon.at("draining").asBool() ? "  DRAINING" : "") +
           "\n";

    out += "streams: " +
           std::to_string(daemon.at("streams_active").asU64()) +
           " active, " +
           std::to_string(daemon.at("streams_done").asU64()) +
           " done, " +
           std::to_string(daemon.at("streams_failed").asU64()) +
           " failed, " +
           std::to_string(daemon.at("streams_refused").asU64()) +
           " refused (" +
           std::to_string(daemon.at("streams_total").asU64()) +
           " admitted)\n";

    out += "records: " +
           std::to_string(daemon.at("records_total").asU64());
    if (records_per_s >= 0.0)
        out += "  rate " + fmtDouble(records_per_s, 0) + "/s";
    const obs::JsonValue *shed =
        findMetric(s.metrics, "ccm_serve_records_shed_total");
    if (shed != nullptr)
        out += "  shed " + std::to_string(shed->at("value").asU64());
    const obs::JsonValue *depth =
        findMetric(s.metrics, "ccm_serve_queue_depth_records");
    if (depth != nullptr)
        out += "  queue depth " +
               std::to_string(depth->at("value").asI64());
    out += "\n";

    out += "latency (us): classify " +
           fmtHistogram(
               findMetric(s.metrics, "ccm_serve_batch_classify_us")) +
           "  decode " +
           fmtHistogram(
               findMetric(s.metrics, "ccm_serve_frame_decode_us")) +
           "\n\n";

    out += "  ID  STATE     RECORDS     SHED  GEN  NAME\n";
    const obs::JsonValue *streams = s.stats.get("streams");
    if (streams != nullptr) {
        for (const auto &st : streams->elements()) {
            char line[160];
            std::snprintf(
                line, sizeof line,
                "%4llu  %-8s %8llu %8llu %4llu  %s\n",
                static_cast<unsigned long long>(
                    st.at("id").asU64()),
                st.at("state").asString().c_str(),
                static_cast<unsigned long long>(
                    st.at("records").asU64()),
                static_cast<unsigned long long>(
                    st.at("queue").at("shed_records").asU64()),
                static_cast<unsigned long long>(
                    st.at("generation").asU64()),
                st.at("name").asString().c_str());
            out += line;
        }
    }

    // One write so a frame never interleaves with log lines.
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fflush(stdout);
}

/**
 * --once: stable "key value" lines, one fact per line, so shell tests
 * can grep without parsing JSON.
 */
void
renderOnce(const Sample &s)
{
    const obs::JsonValue &daemon = s.stats.at("daemon");
    std::string out;
    out += "version " + daemon.at("version").asString() + "\n";
    out += "uptime_seconds " +
           fmtDouble(daemon.at("uptime_seconds").asDouble(), 3) +
           "\n";
    out += "config_generation " +
           std::to_string(daemon.at("config_generation").asU64()) +
           "\n";
    out += "draining " +
           std::string(daemon.at("draining").asBool() ? "true"
                                                      : "false") +
           "\n";
    for (const char *key :
         {"streams_total", "streams_active", "streams_done",
          "streams_failed", "streams_refused", "records_total"})
        out += std::string(key) + " " +
               std::to_string(daemon.at(key).asU64()) + "\n";

    const obs::JsonValue *arr = s.metrics.get("metrics");
    std::size_t n_metrics = 0;
    if (arr != nullptr && arr->isArray())
        n_metrics = arr->elements().size();
    out += "metrics " + std::to_string(n_metrics) + "\n";
    const obs::JsonValue *classify =
        findMetric(s.metrics, "ccm_serve_batch_classify_us");
    if (classify != nullptr) {
        out += "classify_p50_us " +
               fmtDouble(classify->at("p50").asDouble(), 1) + "\n";
        out += "classify_p99_us " +
               fmtDouble(classify->at("p99").asDouble(), 1) + "\n";
    }
    // Sampling-engine instruments (src/sample); present whenever the
    // daemon registered them, zero until an MRC pass runs.
    const obs::JsonValue *lines =
        findMetric(s.metrics, "ccm_sample_lines_sampled_total");
    if (lines != nullptr)
        out += "sample_lines_total " +
               std::to_string(lines->at("value").asU64()) + "\n";
    const obs::JsonValue *srate =
        findMetric(s.metrics, "ccm_sample_rate");
    if (srate != nullptr)
        out += "sample_rate_ppm " +
               std::to_string(srate->at("value").asI64()) + "\n";
    const obs::JsonValue *mrc =
        findMetric(s.metrics, "ccm_sample_mrc_build_us");
    if (mrc != nullptr)
        out += "sample_mrc_build_p50_us " +
               fmtDouble(mrc->at("p50").asDouble(), 1) + "\n";
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fflush(stdout);
}

int
run(const Options &o)
{
    bool have_prev = false;
    std::uint64_t prev_records = 0;
    for (std::uint64_t frame = 0;; ++frame) {
        auto sample = poll(o);
        if (!sample.ok()) {
            CCM_LOG_ERROR(sample.status().toString());
            return 2;
        }
        if (o.once) {
            renderOnce(sample.value());
            return 0;
        }
        const std::uint64_t records = sample.value()
                                          .stats.at("daemon")
                                          .at("records_total")
                                          .asU64();
        double rate = -1.0;
        if (have_prev && o.intervalMs > 0)
            rate = static_cast<double>(records - prev_records) *
                   1000.0 / static_cast<double>(o.intervalMs);
        renderFrame(o, sample.value(), rate);
        prev_records = records;
        have_prev = true;
        if (o.iterations != 0 && frame + 1 >= o.iterations)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(o.intervalMs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR(a, " needs a value");
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--control") {
            o.controlPath = val();
        } else if (a == "--interval-ms") {
            o.intervalMs = static_cast<std::int64_t>(
                parseNum("--interval-ms", val()));
        } else if (a == "--iterations") {
            o.iterations = parseNum("--iterations", val());
        } else if (a == "--once") {
            o.once = true;
        } else if (a == "--no-clear") {
            o.clearScreen = false;
        } else if (a == "--timeout-ms") {
            o.client.ioTimeoutMs =
                static_cast<int>(parseNum("--timeout-ms", val()));
        } else if (a == "--log-level") {
            auto lvl = parseLogLevel(val());
            if (!lvl.ok()) {
                CCM_LOG_ERROR(lvl.status().toString());
                return 1;
            }
            setLogThreshold(lvl.value());
        } else {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        }
    }
    if (o.controlPath.empty()) {
        CCM_LOG_ERROR("--control is required");
        usage();
        return 1;
    }
    return run(o);
}
