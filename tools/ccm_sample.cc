/**
 * @file
 * ccm-sample — the statistical sampling engine's CLI (src/sample):
 * SHARDS miss-ratio curves, representative-interval reconstruction,
 * and MRC-derived geometry recommendations, with optional exact
 * references for error reporting.
 *
 *   ccm-sample --workload gcc --rate 0.01
 *   ccm-sample --workload tomcatv --rate 0.01 --intervals 4 --exact
 *   ccm-sample --trace foo.bin --variant fixed-size --max-lines 4096
 *   ccm-sample --workload stream --stats-json - | ccm-report -
 *
 * The sampled analysis is deterministic for a given (trace, options);
 * only the wall_seconds_* fields vary between runs.  Exit status 0 on
 * success, 1 on usage/trace errors.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "obs/sink.hh"
#include "sample/engine.hh"
#include "trace/mmap_trace.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;

struct Options
{
    std::string workload = "tomcatv";
    std::string tracePath;
    std::size_t refs = 1'000'000;
    std::uint64_t seed = 42;

    double rate = 0.01;
    std::string variant = "fixed-rate";
    std::size_t maxLines = 8192;
    bool noRateCorrection = false;

    std::size_t intervals = 0;
    std::size_t windowRefs = 0;
    std::size_t warmupRefs = 16 * 1024;
    bool exact = false;

    // replay / exact-classify geometry
    std::size_t l1Kb = 16;
    unsigned l1Assoc = 1;
    unsigned mctDepth = 1;
    unsigned mctTagBits = 0;

    std::string statsOut;
    obs::StatsFormat statsFormat = obs::StatsFormat::Json;
};

void
usage()
{
    std::cout <<
        "usage: ccm-sample [options]\n"
        "  --workload NAME        synthetic workload (default "
        "tomcatv)\n"
        "  --trace PATH           binary trace file instead\n"
        "  --refs N               memory references (default 1M)\n"
        "  --seed N               workload + sampling seed\n"
        "\n"
        "sampling:\n"
        "  --rate R               SHARDS rate in (0,1] (default "
        "0.01)\n"
        "  --variant V            fixed-rate | fixed-size\n"
        "  --max-lines N          fixed-size tracked-line budget\n"
        "                         (default 8192)\n"
        "  --no-rate-correction   report raw sampled ratios\n"
        "\n"
        "representative intervals:\n"
        "  --intervals K          replay K representative windows and\n"
        "                         reconstruct whole-trace stats with\n"
        "                         error bars (0 = off)\n"
        "  --window N             window length in refs (default:\n"
        "                         trace/32)\n"
        "  --warmup N             uncounted warmup refs per window\n"
        "                         (default 16384)\n"
        "  --exact                also run the exact references and\n"
        "                         report prediction errors\n"
        "\n"
        "geometry (replay + exact classify):\n"
        "  --l1-kb N --l1-assoc N (default 16, 1)\n"
        "  --mct-depth N --mct-bits N\n"
        "\n"
        "output:\n"
        "  --stats-json FILE      kind:\"sample\" document (\"-\" = "
        "stdout)\n"
        "  --stats-out FILE       like --stats-json + --stats-format\n"
        "  --stats-format F       text | json | csv\n"
        "  --log-level L          trace|debug|info|warn|error|off\n";
}

int
run(const Options &o)
{
    Expected<std::unique_ptr<TraceSource>> trace =
        o.tracePath.empty()
            ? makeWorkloadChecked(o.workload, o.refs, o.seed)
            : openTraceMappedOrFile(o.tracePath, TraceReadOptions{});
    if (!trace.ok()) {
        CCM_LOG_ERROR(trace.status().toString());
        return 1;
    }
    VectorTrace captured = VectorTrace::capture(*trace.value());

    sample::SampleRunConfig scfg;
    scfg.mrc.rate = o.rate;
    scfg.mrc.seed = o.seed;
    scfg.mrc.variant = o.variant == "fixed-size"
                           ? sample::ShardsVariant::FixedSize
                           : sample::ShardsVariant::FixedRate;
    scfg.mrc.maxSampledLines = o.maxLines;
    scfg.mrc.rateCorrection = !o.noRateCorrection;
    scfg.mrc.windowRefs = o.windowRefs;
    scfg.intervals = o.intervals;
    scfg.interval.warmupRefs = o.warmupRefs;
    scfg.interval.seed = o.seed;
    scfg.classify.cacheBytes = o.l1Kb * 1024;
    scfg.classify.assoc = o.l1Assoc;
    scfg.classify.mctDepth = o.mctDepth;
    scfg.classify.mctTagBits = o.mctTagBits;
    scfg.compareExact = o.exact;

    auto rep = sample::runSampleAnalysis(captured.records().data(),
                                         captured.records().size(),
                                         scfg);
    if (!rep.ok()) {
        CCM_LOG_ERROR(rep.status().toString());
        return 1;
    }
    const sample::SampleReport &r = rep.value();

    std::cout << "== ccm-sample: " << trace.value()->name() << " ==\n"
              << "rate              " << r.mrc.finalRate * 100.0
              << "% " << sample::toString(r.mrc.variant);
    if (r.mrc.thresholdHalvings > 0)
        std::cout << " (" << r.mrc.thresholdHalvings << " halvings)";
    std::cout << "\n"
              << "references        " << r.mrc.sampledRefs
              << " sampled of " << r.mrc.totalRefs << " ("
              << r.mrc.linesSampled << " lines)\n\n"
              << "capacity      miss ratio"
              << (r.hasExact ? "      exact      |err|" : "")
              << "\n";
    for (std::size_t i = 0; i < r.mrc.points.size(); ++i) {
        const sample::MrcPoint &p = r.mrc.points[i];
        std::cout << p.capacityBytes / 1024 << "KB\t      "
                  << p.missRatio;
        if (r.hasExact && i < r.exactMrc.points.size()) {
            const double e = r.exactMrc.points[i].missRatio;
            std::cout << "\t" << e << "\t"
                      << (p.missRatio > e ? p.missRatio - e
                                          : e - p.missRatio);
        }
        std::cout << "\n";
    }
    std::cout << "\nrecommendation    "
              << r.recommendation.rationale << "\n";

    if (r.hasIntervals) {
        std::cout << "\nintervals         " << r.intervals.clusters
                  << " of " << r.intervals.windows << " windows ("
                  << r.intervals.windowRefs << " refs each), "
                  << r.intervals.replayedRefs << " of "
                  << r.intervals.totalRefs << " refs replayed\n";
        for (const sample::StatEstimate &est : r.intervals.stats) {
            if (est.predicted == 0.0)
                continue;
            std::cout << est.name << "  " << est.predicted << " +/- "
                      << est.errorBar << "\n";
        }
    }
    if (r.hasExact) {
        std::cout << "\nMRC error         mae " << r.mrcMae
                  << ", max " << r.mrcMaxError << "\n";
        if (r.hasIntervals)
            std::cout << "stat error        max "
                      << r.maxStatRelError * 100.0 << "% relative\n";
        std::cout << "wall              sampled "
                  << r.wallSecondsSampled << "s, exact "
                  << r.wallSecondsExact << "s\n";
    }

    if (!o.statsOut.empty()) {
        obs::JsonValue doc =
            obs::sampleDocument(trace.value()->name(), r);
        Status s = obs::writeDocumentToFile(o.statsOut, doc,
                                            o.statsFormat);
        if (!s.isOk()) {
            CCM_LOG_ERROR(s.toString());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR(a, " needs a value");
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--workload") {
            o.workload = val();
        } else if (a == "--trace") {
            o.tracePath = val();
        } else if (a == "--refs") {
            o.refs = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--rate") {
            o.rate = std::strtod(val().c_str(), nullptr);
        } else if (a == "--variant") {
            o.variant = val();
            if (o.variant != "fixed-rate" &&
                o.variant != "fixed-size") {
                CCM_LOG_ERROR("unknown variant '", o.variant,
                              "' (fixed-rate | fixed-size)");
                return 1;
            }
        } else if (a == "--max-lines") {
            o.maxLines = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--no-rate-correction") {
            o.noRateCorrection = true;
        } else if (a == "--intervals") {
            o.intervals = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--window") {
            o.windowRefs = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--warmup") {
            o.warmupRefs = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--exact") {
            o.exact = true;
        } else if (a == "--l1-kb") {
            o.l1Kb = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--l1-assoc") {
            o.l1Assoc = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--mct-depth") {
            o.mctDepth = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--mct-bits") {
            o.mctTagBits = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--stats-json" || a == "--stats-out") {
            o.statsOut = val();
            if (a == "--stats-json")
                o.statsFormat = obs::StatsFormat::Json;
        } else if (a == "--stats-format") {
            auto f = obs::parseStatsFormat(val());
            if (!f.ok()) {
                CCM_LOG_ERROR(f.status().toString());
                return 1;
            }
            o.statsFormat = f.value();
        } else if (a == "--log-level") {
            auto lvl = parseLogLevel(val());
            if (!lvl.ok()) {
                CCM_LOG_ERROR(lvl.status().toString());
                return 1;
            }
            setLogThreshold(lvl.value());
        } else {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        }
    }
    return run(o);
}
