/**
 * @file
 * ccm-trace — trace-file utility: generate binary traces from the
 * synthetic workloads, convert between the packed and delta
 * encodings, and inspect existing trace files.
 *
 *   ccm-trace gen tomcatv out.bin --refs 1000000 --seed 7
 *   ccm-trace gen tomcatv out.bin --delta
 *   ccm-trace pack in.bin out.bin      # any encoding -> delta
 *   ccm-trace unpack in.bin out.bin    # any encoding -> packed
 *   ccm-trace info out.bin
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "trace/file_trace.hh"
#include "workloads/registry.hh"

namespace
{

int
cmdGen(int argc, char **argv)
{
    using namespace ccm;
    if (argc < 4) {
        CCM_LOG_ERROR("usage: ccm-trace gen WORKLOAD OUT.bin "
                      "[--refs N] [--seed N] [--delta]");
        return 1;
    }
    std::string name = argv[2];
    std::string path = argv[3];
    std::size_t refs = 1'000'000;
    std::uint64_t seed = 42;
    TraceEncoding enc = TraceEncoding::Packed;
    for (int i = 4; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--delta") {
            enc = TraceEncoding::Delta;
        } else if (a == "--refs" && i + 1 < argc) {
            refs = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            CCM_LOG_ERROR("unknown gen option '", a, "'");
            return 1;
        }
    }

    auto wl = makeWorkload(name, refs, seed);
    if (!wl) {
        CCM_LOG_ERROR("unknown workload '", name, "'");
        return 1;
    }
    TraceFileWriter writer(path, enc);
    std::size_t n = writer.writeAll(*wl);
    std::cout << "wrote " << n << " records (" << refs
              << " memory refs, " << toString(enc) << ") to " << path
              << "\n";
    return 0;
}

/** Shared body of pack/unpack: re-encode @p in as @p enc at @p out. */
int
cmdConvert(int argc, char **argv, ccm::TraceEncoding enc)
{
    using namespace ccm;
    if (argc < 4) {
        CCM_LOG_ERROR("usage: ccm-trace ",
                      enc == TraceEncoding::Delta ? "pack" : "unpack",
                      " IN.bin OUT.bin");
        return 1;
    }
    auto rd = TraceFileReader::open(argv[2]);
    if (!rd.ok()) {
        CCM_LOG_ERROR(rd.status().toString());
        return 1;
    }
    auto wr = TraceFileWriter::create(argv[3], enc);
    if (!wr.ok()) {
        CCM_LOG_ERROR(wr.status().toString());
        return 1;
    }
    std::size_t n = wr.value()->writeAll(*rd.value());
    Status s = wr.value()->close();
    if (!s.isOk()) {
        CCM_LOG_ERROR(s.toString());
        return 1;
    }
    std::cout << "wrote " << n << " records ("
              << toString(rd.value()->readStats().encoding) << " -> "
              << toString(enc) << ") to " << argv[3] << "\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    using namespace ccm;
    if (argc < 3) {
        CCM_LOG_ERROR("usage: ccm-trace info TRACE.bin");
        return 1;
    }
    TraceFileReader rd(argv[2]);
    std::size_t loads = 0, stores = 0, nonmem = 0, deps = 0;
    Addr lo = invalidAddr, hi = 0;
    MemRecord r;
    while (rd.next(r)) {
        if (r.isLoad())
            ++loads;
        else if (r.isStore())
            ++stores;
        else
            ++nonmem;
        if (r.isMem()) {
            lo = std::min(lo, r.addr);
            hi = std::max(hi, r.addr);
            deps += r.dependsOnPrevLoad ? 1 : 0;
        }
    }
    std::cout << "encoding       "
              << toString(rd.readStats().encoding) << "\n"
              << "records        " << rd.size() << "\n"
              << "loads          " << loads << "\n"
              << "stores         " << stores << "\n"
              << "non-memory     " << nonmem << "\n"
              << "dependent lds  " << deps << "\n";
    if (loads + stores > 0) {
        std::cout << std::hex << "addr range     [0x" << lo << ", 0x"
                  << hi << "]" << std::dec << "\n"
                  << "footprint      " << (hi - lo) / 1024
                  << " KB span\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        CCM_LOG_ERROR("usage: ccm-trace gen|pack|unpack|info ...");
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(argc, argv);
    if (cmd == "pack")
        return cmdConvert(argc, argv, ccm::TraceEncoding::Delta);
    if (cmd == "unpack")
        return cmdConvert(argc, argv, ccm::TraceEncoding::Packed);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    CCM_LOG_ERROR("unknown subcommand '", cmd, "'");
    return 1;
}
