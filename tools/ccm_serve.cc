/**
 * @file
 * ccm-serve — the streaming trace-serving daemon (docs/SERVING.md).
 *
 *   ccm-serve --socket /run/ccm.sock --control /run/ccm-ctl.sock \
 *             --config serve.conf --idle-ttl-ms 30000
 *
 * Producers connect to the ingest socket and stream CCMF frames
 * (tools/ccm-stream, or the ServeClient library); each stream runs on
 * its own bounded simulation pipeline.  The control socket answers
 * one-line commands: "stats" (live kind:"serve" ccm-stats JSON),
 * "metrics" (Prometheus text), "metrics json" (kind:"metrics" JSON),
 * "drain", "reload", "ping".
 *
 * Signals: SIGTERM/SIGINT start a graceful drain (grace period for
 * producers to finish, then cut) and the process exits 0; SIGHUP
 * re-reads --config and swaps the runtime configuration for new
 * streams.  A failed reload keeps the old configuration and the
 * daemon keeps serving.
 *
 * Exit status: 0 after a drain (signal or control command), 1 on
 * usage/startup errors.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <poll.h>

#include "common/log.hh"
#include "common/shutdown.hh"
#include "obs/sink.hh"
#include "obs/span.hh"
#include "sample/mrc.hh"
#include "serve/daemon.hh"

namespace
{

using namespace ccm;

void
usage()
{
    std::cout <<
        "usage: ccm-serve --socket PATH [options]\n"
        "  --socket PATH          ingest unix-domain socket (required)\n"
        "  --control PATH         control socket (stats/drain/reload)\n"
        "  --config FILE          runtime config file; SIGHUP re-reads\n"
        "                         it (keys: see docs/SERVING.md)\n"
        "  --arch A               architecture for new streams\n"
        "                         (overrides the config file)\n"
        "  --max-streams N        admission cap (default 64)\n"
        "  --idle-ttl-ms N        reap streams idle > N ms (0 = never)\n"
        "  --drain-grace-ms N     drain grace period (default 2000)\n"
        "  --poll-ms N            internal poll tick (default 100)\n"
        "  --queue-records N      per-stream queue bound (default 8192)\n"
        "  --policy P             block | shed (default block)\n"
        "  --window-every N       rolling-window sample length in refs\n"
        "  --window-samples N     rolling-window samples kept\n"
        "  --defect-budget N      frame defects tolerated per stream\n"
        "  --stats-out FILE       write the final stats document on\n"
        "                         exit (\"-\" = stdout)\n"
        "  --trace-spans FILE     write a Chrome trace-event JSON of\n"
        "                         stream/control spans on exit\n"
        "  --log-level L          trace|debug|info|warn|error|off\n"
        "                         (default $CCM_LOG_LEVEL or info)\n";
}

std::uint64_t
parseNum(const char *flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        CCM_LOG_ERROR(flag, " needs a number, got '", text, "'");
        std::exit(1);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions opts;
    std::string statsOut;
    std::string traceSpans;
    std::string archOverride;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR(a, " needs a value");
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            opts.socketPath = val();
        } else if (a == "--control") {
            opts.controlPath = val();
        } else if (a == "--config") {
            opts.configPath = val();
        } else if (a == "--arch") {
            archOverride = val();
        } else if (a == "--max-streams") {
            opts.maxStreams = parseNum("--max-streams", val());
        } else if (a == "--idle-ttl-ms") {
            opts.idleTtlMs = static_cast<std::int64_t>(
                parseNum("--idle-ttl-ms", val()));
        } else if (a == "--drain-grace-ms") {
            opts.drainGraceMs = static_cast<std::int64_t>(
                parseNum("--drain-grace-ms", val()));
        } else if (a == "--poll-ms") {
            opts.pollMs = static_cast<std::int64_t>(
                parseNum("--poll-ms", val()));
        } else if (a == "--queue-records") {
            opts.runtime.limits.queueRecords =
                parseNum("--queue-records", val());
        } else if (a == "--policy") {
            auto p = serve::parseOverflowPolicy(val());
            if (!p.ok()) {
                CCM_LOG_ERROR(p.status().toString());
                return 1;
            }
            opts.runtime.limits.policy = p.value();
        } else if (a == "--window-every") {
            opts.runtime.limits.windowEvery =
                parseNum("--window-every", val());
        } else if (a == "--window-samples") {
            opts.runtime.limits.windowSamples =
                parseNum("--window-samples", val());
        } else if (a == "--defect-budget") {
            opts.runtime.limits.defectBudget =
                parseNum("--defect-budget", val());
        } else if (a == "--stats-out") {
            statsOut = val();
        } else if (a == "--trace-spans") {
            traceSpans = val();
        } else if (a == "--log-level") {
            auto lvl = parseLogLevel(val());
            if (!lvl.ok()) {
                CCM_LOG_ERROR(lvl.status().toString());
                return 1;
            }
            setLogThreshold(lvl.value());
        } else {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        }
    }

    if (opts.socketPath.empty()) {
        CCM_LOG_ERROR("--socket is required");
        usage();
        return 1;
    }

    if (!traceSpans.empty()) {
        Status ts = obs::SpanTracer::global().enableToFile(traceSpans);
        if (!ts.isOk()) {
            CCM_LOG_ERROR(ts.toString());
            return 1;
        }
    }

    if (!opts.configPath.empty()) {
        auto cfg = serve::loadServeConfig(opts.configPath);
        if (!cfg.ok()) {
            CCM_LOG_ERROR(cfg.status().toString());
            return 1;
        }
        opts.runtime = cfg.take();
    }
    if (!archOverride.empty()) {
        auto sys = serve::buildArchConfig(archOverride);
        if (!sys.ok()) {
            CCM_LOG_ERROR(sys.status().toString());
            return 1;
        }
        opts.runtime.arch = archOverride;
        opts.runtime.system = sys.take();
    }

    std::signal(SIGPIPE, SIG_IGN);

    // Register the sampling instruments at zero so scrapers (and
    // ccm-top) see the full metric surface before any MRC pass runs.
    sample::touchSampleMetrics();

    ShutdownLatch latch;
    Status sig = latch.installSignalHandlers(SIGTERM, SIGINT, SIGHUP);
    if (!sig.isOk()) {
        CCM_LOG_ERROR(sig.toString());
        return 1;
    }

    serve::ServeDaemon daemon(opts);
    Status started = daemon.start();
    if (!started.isOk()) {
        CCM_LOG_ERROR(started.toString());
        return 1;
    }
    std::cout << "ccm-serve: listening on " << opts.socketPath;
    if (!opts.controlPath.empty())
        std::cout << " (control " << opts.controlPath << ")";
    std::cout << ", arch " << opts.runtime.arch << std::endl;

    while (!latch.stopRequested() && !daemon.draining()) {
        if (latch.takeReloadRequest()) {
            latch.drainWake();
            Status s = daemon.reload();
            if (!s.isOk())
                CCM_LOG_WARN(s.toString());
            continue;
        }
        pollfd pf{};
        pf.fd = latch.wakeFd();
        pf.events = POLLIN;
        ::poll(&pf, 1, 200);
    }

    CCM_LOG_INFO("draining...");
    daemon.drainAndStop();

    if (!statsOut.empty()) {
        Status ws = obs::writeDocumentToFile(
            statsOut, daemon.statsDocument(), obs::StatsFormat::Json);
        if (!ws.isOk())
            CCM_LOG_ERROR(ws.toString());
    }
    Status fs = obs::SpanTracer::global().flush();
    if (!fs.isOk())
        CCM_LOG_ERROR(fs.toString());
    CCM_LOG_INFO("drained, exiting");
    return 0;
}
