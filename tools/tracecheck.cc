/**
 * @file
 * tracecheck — validate and repair CCMTRACE files, and validate CCMF
 * frame-stream captures (ccm-stream --frames-out).
 *
 *   tracecheck validate TRACE.bin [--quiet]
 *   tracecheck repair IN.bin OUT.bin [--budget N]
 *   tracecheck frames CAPTURE.bin [--quiet]
 *
 * `validate` classifies the file and exits with a deterministic code
 * per defect class, so sweep scripts can triage a directory of traces
 * without parsing output:
 *
 *   0  clean
 *   1  usage error
 *   2  cannot open / read (io-error)
 *   3  zero-length file
 *   4  truncated header
 *   5  bad magic
 *   6  unsupported version
 *   7  trailing partial record
 *   8  mid-file garbage
 *   9  repair failed
 *   10 bad delta control byte
 *   11 bad / overlong varint
 *
 * `frames` runs the ccm-serve frame parser over a captured stream and
 * reports its FrameStats; codes continue the scheme (12+ so they
 * never collide with the file codes above):
 *
 *   12  no end frame (stream was cut off)
 *   13  garbage between frames (bad-magic)
 *   14  implausible frame header
 *   15  checksum mismatch
 *   16  implausible records inside a frame
 *   17  malformed hello frame
 *   18  truncated trailing frame
 *
 * `repair` re-reads IN tolerantly (resyncing past garbage, treating a
 * truncated tail as end-of-trace) and writes the surviving records to
 * OUT as a clean v1 trace.  It exits 0 when OUT was written — even
 * when records had to be dropped (that is the point) — and nonzero
 * when IN's header is unusable or OUT cannot be written.
 *
 * The format and these semantics are documented in
 * docs/TRACE_FORMAT.md.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "serve/frame.hh"
#include "trace/file_trace.hh"

namespace
{

using namespace ccm;

constexpr int exitOk = 0;
constexpr int exitUsage = 1;
constexpr int exitRepairFailed = 9;

/** Deterministic defect -> exit-code mapping (documented above). */
int
defectExitCode(TraceDefect d)
{
    switch (d) {
      case TraceDefect::None:
        return exitOk;
      case TraceDefect::IoError:
        return 2;
      case TraceDefect::ZeroLength:
        return 3;
      case TraceDefect::TruncatedHeader:
        return 4;
      case TraceDefect::BadMagic:
        return 5;
      case TraceDefect::BadVersion:
        return 6;
      case TraceDefect::PartialTail:
        return 7;
      case TraceDefect::MidFileGarbage:
        return 8;
      case TraceDefect::BadControlByte:
        return 10;
      case TraceDefect::BadVarint:
        return 11;
    }
    return exitUsage;
}

/** Frame-stream defect -> exit-code mapping (documented above). */
int
frameDefectExitCode(serve::FrameDefect d)
{
    switch (d) {
      case serve::FrameDefect::None:
        return exitOk;
      case serve::FrameDefect::BadMagic:
        return 13;
      case serve::FrameDefect::BadHeader:
        return 14;
      case serve::FrameDefect::BadChecksum:
        return 15;
      case serve::FrameDefect::BadRecord:
        return 16;
      case serve::FrameDefect::BadHello:
        return 17;
      case serve::FrameDefect::TruncatedTail:
        return 18;
    }
    return exitUsage;
}

void
usage()
{
    // Usage goes to stdout like the other tools' --help text.
    std::cout <<
        "usage: tracecheck validate TRACE.bin [--quiet]\n"
        "       tracecheck repair IN.bin OUT.bin [--budget N]\n"
        "       tracecheck frames CAPTURE.bin [--quiet]\n"
        "validate exit codes: 0 ok, 2 io-error, 3 zero-length,\n"
        "  4 truncated-header, 5 bad-magic, 6 bad-version,\n"
        "  7 partial-tail, 8 mid-file-garbage,\n"
        "  10 bad-control-byte, 11 bad-varint (delta traces)\n"
        "frames exit codes: 0 ok, 2 io-error, 3 zero-length,\n"
        "  12 no-end-frame, 13 bad-magic, 14 bad-header,\n"
        "  15 bad-checksum, 16 bad-record, 17 bad-hello,\n"
        "  18 truncated-tail\n";
}

int
cmdValidate(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return exitUsage;
    }
    std::string path = argv[2];
    bool quiet = argc > 3 && std::strcmp(argv[3], "--quiet") == 0;

    TraceReadStats stats;
    TraceDefect defect = probeTraceFile(path, &stats);
    if (!quiet) {
        std::cout << "file           " << path << "\n"
                  << "verdict        " << traceDefectName(defect)
                  << "\n";
        stats.dump(std::cout);
    }
    return defectExitCode(defect);
}

int
cmdRepair(int argc, char **argv)
{
    if (argc < 4) {
        usage();
        return exitUsage;
    }
    std::string in = argv[2];
    std::string out = argv[3];
    TraceReadOptions opts;
    opts.corruptionBudget = ~std::size_t{0};
    opts.tolerateTruncatedTail = true;
    for (int i = 4; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--budget") == 0) {
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0') {
                CCM_LOG_ERROR("--budget needs a number, got '",
                              argv[i + 1], "'");
                return exitUsage;
            }
            opts.corruptionBudget = v;
        }
    }

    std::vector<MemRecord> records;
    TraceReadStats stats;
    Status s = loadTraceFile(in, opts, records, stats);
    if (!s.isOk()) {
        // Header-level damage (or budget exhaustion): nothing we can
        // trust enough to salvage.
        CCM_LOG_ERROR("cannot repair: ", s.toString());
        return stats.firstDefect == TraceDefect::None
                   ? exitRepairFailed
                   : defectExitCode(stats.firstDefect);
    }

    auto writer = TraceFileWriter::create(out);
    if (!writer.ok()) {
        CCM_LOG_ERROR("cannot repair: ",
                      writer.status().toString());
        return exitRepairFailed;
    }
    for (const auto &r : records) {
        Status ws = writer.value()->writeChecked(r);
        if (!ws.isOk()) {
            CCM_LOG_ERROR("cannot repair: ", ws.toString());
            return exitRepairFailed;
        }
    }
    Status cs = writer.value()->close();
    if (!cs.isOk()) {
        CCM_LOG_ERROR("cannot repair: ", cs.toString());
        return exitRepairFailed;
    }

    std::cout << "repaired       " << in << " -> " << out << "\n"
              << "records kept   " << records.size() << "\n"
              << "resync events  " << stats.resyncEvents << "\n"
              << "bytes dropped  " << stats.bytesSkipped << "\n"
              << "truncated tail " << (stats.truncatedTail ? "yes"
                                                           : "no")
              << "\n";
    return exitOk;
}

int
cmdFrames(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return exitUsage;
    }
    std::string path = argv[2];
    bool quiet = argc > 3 && std::strcmp(argv[3], "--quiet") == 0;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (!quiet)
            CCM_LOG_ERROR("cannot open '", path, "'");
        return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    if (in.bad()) {
        if (!quiet)
            CCM_LOG_ERROR("cannot read '", path, "'");
        return 2;
    }
    if (bytes.empty())
        return 3;

    // Count-only sink: the parser's FrameStats carry the verdict.
    struct CountingSink final : serve::FrameSink
    {
        std::string streamName;
        void
        onHello(std::uint32_t, const std::string &name) override
        {
            if (streamName.empty())
                streamName = name;
        }
        void onRecords(const ccm::MemRecord *, std::size_t) override {}
        void onEnd() override {}
    } sink;

    serve::FrameParser parser;
    parser.feed(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                bytes.size(), sink);
    parser.finish(sink);
    const serve::FrameStats &fs = parser.stats();

    if (!quiet) {
        std::cout << "file           " << path << "\n"
                  << "stream         "
                  << (sink.streamName.empty() ? "(no hello)"
                                              : sink.streamName)
                  << "\n"
                  << "frames         " << fs.frames << "\n"
                  << "records        " << fs.records << "\n"
                  << "end frame      "
                  << (parser.sawEnd() ? "yes" : "no") << "\n"
                  << "malformed      " << fs.malformedFrames << "\n"
                  << "resync events  " << fs.resyncEvents << "\n"
                  << "bytes skipped  " << fs.bytesSkipped << "\n"
                  << "bad records    " << fs.badRecords << "\n"
                  << "first defect   "
                  << serve::frameDefectName(fs.firstDefect) << "\n";
    }
    if (!fs.clean())
        return frameDefectExitCode(fs.firstDefect);
    return parser.sawEnd() ? exitOk : 12;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return exitUsage;
    }
    std::string cmd = argv[1];
    if (cmd == "validate")
        return cmdValidate(argc, argv);
    if (cmd == "repair")
        return cmdRepair(argc, argv);
    if (cmd == "frames")
        return cmdFrames(argc, argv);
    usage();
    return exitUsage;
}
