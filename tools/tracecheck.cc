/**
 * @file
 * tracecheck — validate and repair CCMTRACE files.
 *
 *   tracecheck validate TRACE.bin [--quiet]
 *   tracecheck repair IN.bin OUT.bin [--budget N]
 *
 * `validate` classifies the file and exits with a deterministic code
 * per defect class, so sweep scripts can triage a directory of traces
 * without parsing output:
 *
 *   0  clean
 *   1  usage error
 *   2  cannot open / read (io-error)
 *   3  zero-length file
 *   4  truncated header
 *   5  bad magic
 *   6  unsupported version
 *   7  trailing partial record
 *   8  mid-file garbage
 *   9  repair failed
 *
 * `repair` re-reads IN tolerantly (resyncing past garbage, treating a
 * truncated tail as end-of-trace) and writes the surviving records to
 * OUT as a clean v1 trace.  It exits 0 when OUT was written — even
 * when records had to be dropped (that is the point) — and nonzero
 * when IN's header is unusable or OUT cannot be written.
 *
 * The format and these semantics are documented in
 * docs/TRACE_FORMAT.md.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/file_trace.hh"

namespace
{

using namespace ccm;

constexpr int exitOk = 0;
constexpr int exitUsage = 1;
constexpr int exitRepairFailed = 9;

/** Deterministic defect -> exit-code mapping (documented above). */
int
defectExitCode(TraceDefect d)
{
    switch (d) {
      case TraceDefect::None:
        return exitOk;
      case TraceDefect::IoError:
        return 2;
      case TraceDefect::ZeroLength:
        return 3;
      case TraceDefect::TruncatedHeader:
        return 4;
      case TraceDefect::BadMagic:
        return 5;
      case TraceDefect::BadVersion:
        return 6;
      case TraceDefect::PartialTail:
        return 7;
      case TraceDefect::MidFileGarbage:
        return 8;
    }
    return exitUsage;
}

void
usage()
{
    std::cerr <<
        "usage: tracecheck validate TRACE.bin [--quiet]\n"
        "       tracecheck repair IN.bin OUT.bin [--budget N]\n"
        "validate exit codes: 0 ok, 2 io-error, 3 zero-length,\n"
        "  4 truncated-header, 5 bad-magic, 6 bad-version,\n"
        "  7 partial-tail, 8 mid-file-garbage\n";
}

int
cmdValidate(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return exitUsage;
    }
    std::string path = argv[2];
    bool quiet = argc > 3 && std::strcmp(argv[3], "--quiet") == 0;

    TraceReadStats stats;
    TraceDefect defect = probeTraceFile(path, &stats);
    if (!quiet) {
        std::cout << "file           " << path << "\n"
                  << "verdict        " << traceDefectName(defect)
                  << "\n";
        stats.dump(std::cout);
    }
    return defectExitCode(defect);
}

int
cmdRepair(int argc, char **argv)
{
    if (argc < 4) {
        usage();
        return exitUsage;
    }
    std::string in = argv[2];
    std::string out = argv[3];
    TraceReadOptions opts;
    opts.corruptionBudget = ~std::size_t{0};
    opts.tolerateTruncatedTail = true;
    for (int i = 4; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--budget") == 0) {
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0') {
                std::cerr << "--budget needs a number, got '"
                          << argv[i + 1] << "'\n";
                return exitUsage;
            }
            opts.corruptionBudget = v;
        }
    }

    std::vector<MemRecord> records;
    TraceReadStats stats;
    Status s = loadTraceFile(in, opts, records, stats);
    if (!s.isOk()) {
        // Header-level damage (or budget exhaustion): nothing we can
        // trust enough to salvage.
        std::cerr << "cannot repair: " << s.toString() << "\n";
        return stats.firstDefect == TraceDefect::None
                   ? exitRepairFailed
                   : defectExitCode(stats.firstDefect);
    }

    auto writer = TraceFileWriter::create(out);
    if (!writer.ok()) {
        std::cerr << "cannot repair: " << writer.status().toString()
                  << "\n";
        return exitRepairFailed;
    }
    for (const auto &r : records) {
        Status ws = writer.value()->writeChecked(r);
        if (!ws.isOk()) {
            std::cerr << "cannot repair: " << ws.toString() << "\n";
            return exitRepairFailed;
        }
    }
    Status cs = writer.value()->close();
    if (!cs.isOk()) {
        std::cerr << "cannot repair: " << cs.toString() << "\n";
        return exitRepairFailed;
    }

    std::cout << "repaired       " << in << " -> " << out << "\n"
              << "records kept   " << records.size() << "\n"
              << "resync events  " << stats.resyncEvents << "\n"
              << "bytes dropped  " << stats.bytesSkipped << "\n"
              << "truncated tail " << (stats.truncatedTail ? "yes"
                                                           : "no")
              << "\n";
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return exitUsage;
    }
    std::string cmd = argv[1];
    if (cmd == "validate")
        return cmdValidate(argc, argv);
    if (cmd == "repair")
        return cmdRepair(argc, argv);
    usage();
    return exitUsage;
}
