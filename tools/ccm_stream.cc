/**
 * @file
 * ccm-stream — producer and control client for ccm-serve
 * (docs/SERVING.md).
 *
 * Producer mode streams a workload (or trace file) to the daemon:
 *
 *   ccm-stream --socket /run/ccm.sock --name web-1 \
 *              --workload tomcatv --refs 200000
 *
 * Fault-injection flags make it double as the robustness test rig:
 * --fault-* decorate the trace with FaultInjectingSource's
 * record-level defects, --corrupt-after injects raw garbage bytes
 * into the frame stream (wire corruption), and --disconnect-after
 * drops the connection without an end frame (producer crash).
 * --frames-out captures the exact byte stream for `tracecheck frames`.
 *
 * Control mode sends one command and prints the reply:
 *
 *   ccm-stream --control /run/ccm-ctl.sock --cmd stats
 *
 * Exit status: 0 success (including an intentional
 * --disconnect-after), 1 usage errors, 2 connect/send failures or an
 * "error:" control reply.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "trace/fault_trace.hh"
#include "trace/file_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;

void
usage()
{
    std::cout <<
        "usage: ccm-stream --socket PATH --name NAME [options]\n"
        "       ccm-stream --control PATH --cmd COMMAND\n"
        "producer options:\n"
        "  --workload W           synthetic workload (default tomcatv)\n"
        "  --refs N               workload length (default 100000)\n"
        "  --seed N               workload seed (default 42)\n"
        "  --trace FILE           stream a binary trace file instead\n"
        "  --chunk N              records per frame batch (default 256)\n"
        "  --fault-bitflip R      FaultInjectingSource bit-flip rate\n"
        "  --fault-drop R         record drop rate\n"
        "  --fault-dup R          record duplication rate\n"
        "  --fault-truncate N     stop the source after N records\n"
        "  --fault-seed N         fault plan seed (default 1)\n"
        "  --corrupt-after N      after N records, inject raw garbage\n"
        "  --corrupt-bytes N      garbage byte count (default 64)\n"
        "  --disconnect-after N   close without an end frame after N\n"
        "                         records (simulated producer crash)\n"
        "  --frames-out FILE      capture the framed byte stream\n"
        "connection options:\n"
        "  --retries N            connect attempts (default 5)\n"
        "  --backoff-ms N         initial backoff, doubles (default 10)\n"
        "  --timeout-ms N         per-send/reply timeout (default 5000)\n";
}

std::uint64_t
parseNum(const char *flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        CCM_LOG_ERROR(flag, " needs a number, got '", text, "'");
        std::exit(1);
    }
    return v;
}

double
parseRate(const char *flag, const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0 || v > 1.0) {
        CCM_LOG_ERROR(flag, " needs a rate in [0,1], got '", text,
                      "'");
        std::exit(1);
    }
    return v;
}

struct Options
{
    std::string socketPath;
    std::string controlPath;
    std::string command;
    std::string name;
    std::string workload = "tomcatv";
    std::string tracePath;
    std::string framesOut;
    std::size_t refs = 100'000;
    std::uint64_t seed = 42;
    std::size_t chunk = serve::kMaxRecordsPerFrame;
    FaultPlan faults;
    std::size_t corruptAfter = 0; ///< 0 = no wire corruption
    std::size_t corruptBytes = 64;
    std::size_t disconnectAfter = 0; ///< 0 = finish cleanly
    serve::ClientOptions client;
};

int
runControl(const Options &o)
{
    auto reply = serve::controlRequest(o.controlPath, o.command,
                                       o.client);
    if (!reply.ok()) {
        CCM_LOG_ERROR(reply.status().toString());
        return 2;
    }
    std::cout << reply.value();
    if (!reply.value().empty() && reply.value().back() != '\n')
        std::cout << "\n";
    return reply.value().rfind("error:", 0) == 0 ? 2 : 0;
}

int
runProducer(const Options &o)
{
    std::unique_ptr<TraceSource> base;
    if (!o.tracePath.empty()) {
        auto rd = TraceFileReader::open(o.tracePath);
        if (!rd.ok()) {
            CCM_LOG_ERROR(rd.status().toString());
            return 2;
        }
        base = std::unique_ptr<TraceSource>(rd.take().release());
    } else {
        base = makeWorkload(o.workload, o.refs, o.seed);
        if (!base) {
            CCM_LOG_ERROR("unknown workload '", o.workload, "'");
            return 1;
        }
    }

    TraceSource *src = base.get();
    std::unique_ptr<FaultInjectingSource> faulty;
    if (o.faults.enabled()) {
        faulty = std::make_unique<FaultInjectingSource>(*base, o.faults);
        src = faulty.get();
    }

    auto connected =
        serve::ServeClient::connect(o.socketPath, o.name, o.client);
    if (!connected.ok()) {
        CCM_LOG_ERROR(connected.status().toString());
        return 2;
    }
    serve::ServeClient client = connected.take();

    // Capture mirrors every byte that goes on the wire, hello first.
    std::vector<std::uint8_t> capture;
    const bool capturing = !o.framesOut.empty();
    if (capturing)
        serve::appendHelloFrame(capture, o.name);

    const std::size_t chunk =
        std::min(o.chunk == 0 ? std::size_t{1} : o.chunk,
                 serve::kMaxRecordsPerFrame);
    std::vector<MemRecord> batch(chunk);
    std::size_t sent = 0;
    bool corrupted = false;
    bool disconnected = false;

    for (;;) {
        if (o.corruptAfter > 0 && !corrupted &&
            sent >= o.corruptAfter) {
            corrupted = true;
            // Garbage with no believable frame boundary in it: the
            // daemon must resync past every byte.
            std::vector<std::uint8_t> junk(o.corruptBytes, 0xa5);
            Status s = client.sendRawBytes(junk.data(), junk.size());
            if (!s.isOk()) {
                CCM_LOG_ERROR(s.toString());
                return 2;
            }
            if (capturing)
                capture.insert(capture.end(), junk.begin(),
                               junk.end());
        }

        std::size_t want = chunk;
        if (o.disconnectAfter > 0)
            want = std::min(want, o.disconnectAfter - sent);
        if (want == 0) {
            client.closeAbrupt();
            disconnected = true;
            break;
        }
        const std::size_t n = src->nextBatch(batch.data(), want);
        if (n == 0)
            break;

        std::vector<std::uint8_t> bytes;
        serve::appendRecordsFrames(bytes, batch.data(), n);
        Status s = client.sendRawBytes(bytes.data(), bytes.size());
        if (!s.isOk()) {
            CCM_LOG_ERROR(s.toString());
            return 2;
        }
        if (capturing)
            capture.insert(capture.end(), bytes.begin(), bytes.end());
        sent += n;
    }

    if (!disconnected) {
        Status s = client.sendEnd();
        if (!s.isOk()) {
            CCM_LOG_ERROR(s.toString());
            return 2;
        }
        if (capturing)
            serve::appendEndFrame(capture);
    }

    if (capturing) {
        std::ofstream out(o.framesOut, std::ios::binary);
        if (!out ||
            !out.write(reinterpret_cast<const char *>(capture.data()),
                       static_cast<std::streamsize>(capture.size()))) {
            CCM_LOG_ERROR("cannot write ", o.framesOut);
            return 2;
        }
    }

    std::cout << "ccm-stream: " << o.name << ": " << sent
              << " records sent"
              << (disconnected ? " (abrupt disconnect)" : "")
              << (corrupted ? " (wire corruption injected)" : "")
              << "\n";
    if (faulty) {
        const FaultStats &fs = faulty->stats();
        std::cout << "ccm-stream: faults injected: " << fs.bitFlips
                  << " bit flips, " << fs.drops << " drops, "
                  << fs.duplicates << " duplicates"
                  << (fs.truncated ? ", truncated" : "") << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR(a, " needs a value");
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            o.socketPath = val();
        } else if (a == "--control") {
            o.controlPath = val();
        } else if (a == "--cmd") {
            o.command = val();
        } else if (a == "--name") {
            o.name = val();
        } else if (a == "--workload") {
            o.workload = val();
        } else if (a == "--trace") {
            o.tracePath = val();
        } else if (a == "--frames-out") {
            o.framesOut = val();
        } else if (a == "--refs") {
            o.refs = parseNum("--refs", val());
        } else if (a == "--seed") {
            o.seed = parseNum("--seed", val());
        } else if (a == "--chunk") {
            o.chunk = parseNum("--chunk", val());
        } else if (a == "--fault-bitflip") {
            o.faults.bitFlipRate = parseRate("--fault-bitflip", val());
        } else if (a == "--fault-drop") {
            o.faults.dropRate = parseRate("--fault-drop", val());
        } else if (a == "--fault-dup") {
            o.faults.duplicateRate = parseRate("--fault-dup", val());
        } else if (a == "--fault-truncate") {
            o.faults.truncateAfter =
                parseNum("--fault-truncate", val());
        } else if (a == "--fault-seed") {
            o.faults.seed = parseNum("--fault-seed", val());
        } else if (a == "--corrupt-after") {
            o.corruptAfter = parseNum("--corrupt-after", val());
        } else if (a == "--corrupt-bytes") {
            o.corruptBytes = parseNum("--corrupt-bytes", val());
        } else if (a == "--disconnect-after") {
            o.disconnectAfter = parseNum("--disconnect-after", val());
        } else if (a == "--retries") {
            o.client.connectRetries =
                static_cast<int>(parseNum("--retries", val()));
        } else if (a == "--backoff-ms") {
            o.client.backoffInitialMs =
                static_cast<int>(parseNum("--backoff-ms", val()));
        } else if (a == "--timeout-ms") {
            o.client.ioTimeoutMs =
                static_cast<int>(parseNum("--timeout-ms", val()));
        } else {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        }
    }

    if (!o.controlPath.empty()) {
        if (o.command.empty()) {
            CCM_LOG_ERROR("--control needs --cmd COMMAND");
            return 1;
        }
        return runControl(o);
    }
    if (o.socketPath.empty() || o.name.empty()) {
        CCM_LOG_ERROR("--socket and --name are required");
        usage();
        return 1;
    }
    return runProducer(o);
}
