/**
 * @file
 * ccm-report — render and validate ccm-stats documents written by
 * ccm-sim --stats-json, the ccm-serve control socket ("stats",
 * "metrics json"), and the bench binaries' BENCH_*.json files.
 *
 *   ccm-report out.json               human-readable report
 *   ccm-report --top 16 out.json      more hot sets
 *   ccm-report --check out.json       validate only
 *   ccm-report --flat out.json        flattened "path value" lines
 *
 * Exit status separates input damage from schema violations so
 * scripts can triage: 0 = valid document, 1 = usage error or
 * unreadable/unparseable input (a truncated or interleaved JSON file
 * lands here — the bytes never were one document), 2 = parseable JSON
 * that is not a valid ccm-stats document.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "obs/sink.hh"

namespace
{

using namespace ccm;
using obs::JsonValue;

void
usage()
{
    std::cout <<
        "usage: ccm-report [options] FILE\n"
        "  --check        validate only (exit 0 valid, 2 invalid)\n"
        "  --flat         print the flattened \"path value\" form\n"
        "  --top N        hot sets to list (default 8)\n"
        "FILE may be '-' for stdin.\n"
        "exit: 0 valid, 1 usage or unreadable/unparseable input,\n"
        "      2 invalid ccm-stats document\n";
}

/** Fixed-precision rendering for percentage-ish values. */
std::string
num(double v, int precision = 2)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
u64str(const JsonValue &v)
{
    return std::to_string(v.asU64());
}

void
renderRunBody(const JsonValue &doc, std::size_t top_n)
{
    const JsonValue &sim = doc.at("sim");
    if (sim.isObject()) {
        std::cout << "cycles            " << sim.at("cycles").asU64()
                  << "\n"
                  << "instructions      "
                  << sim.at("instructions").asU64() << "\n"
                  << "memory refs       " << sim.at("mem_refs").asU64()
                  << "\n"
                  << "ipc               "
                  << num(sim.at("ipc").asDouble(), 3) << "\n";
    }

    const JsonValue &derived = doc.at("mem").at("derived");
    const JsonValue &counters = doc.at("mem").at("counters");
    std::cout << "L1 hit rate       "
              << num(derived.at("l1_hit_rate_pct").asDouble()) << "%\n"
              << "miss rate         "
              << num(derived.at("miss_rate_pct").asDouble()) << "%\n"
              << "conflict share    "
              << num(derived.at("conflict_share_pct").asDouble())
              << "% of L1 misses ("
              << counters.at("conflict_misses").asU64() << " conflict, "
              << counters.at("capacity_misses").asU64()
              << " capacity)\n";

    if (const JsonValue *heat = doc.get("heatmap")) {
        const JsonValue &top = heat->at("top_sets");
        std::cout << "\n-- top hot sets (of "
                  << heat->at("sets").asU64() << ") --\n";
        if (top.size() == 0) {
            std::cout << "(no set recorded a miss)\n";
        } else {
            TextTable t({"set", "l1 misses", "evictions", "mct lookups",
                         "mct conflicts"});
            std::size_t shown = 0;
            for (const JsonValue &row : top.elements()) {
                if (shown++ >= top_n)
                    break;
                std::size_t r =
                    t.addRow(u64str(row.at("set")));
                t.set(r, 1, u64str(row.at("l1_misses")));
                t.set(r, 2, u64str(row.at("l1_evictions")));
                t.set(r, 3, u64str(row.at("mct_lookups")));
                t.set(r, 4, u64str(row.at("mct_conflicts")));
            }
            t.print(std::cout);
        }
    }

    if (const JsonValue *intervals = doc.get("intervals")) {
        const JsonValue &samples = intervals->at("samples");
        std::cout << "\n-- phases (every "
                  << intervals->at("every").asU64() << " refs, "
                  << samples.size() << " windows) --\n";
        TextTable t({"window", "refs", "miss%", "conflict%", "mct acc%"});
        for (const JsonValue &s : samples.elements()) {
            const std::uint64_t first = s.at("first_ref").asU64();
            const std::uint64_t last = s.at("last_ref").asU64();
            std::size_t r = t.addRow(std::to_string(first) + "-" +
                                     std::to_string(last));
            t.set(r, 1, std::to_string(last - first + 1));
            t.set(r, 2,
                  num(s.at("derived").at("miss_rate_pct").asDouble()));
            t.set(r, 3,
                  num(s.at("derived")
                          .at("conflict_share_pct")
                          .asDouble()));
            const JsonValue *acc = s.get("accuracy");
            t.set(r, 4,
                  acc ? num(acc->at("overall_accuracy_pct").asDouble())
                      : std::string("-"));
        }
        t.print(std::cout);
    }

    if (const JsonValue *events = doc.get("events")) {
        std::cout << "\n-- classification events --\n"
                  << "seen " << events->at("seen").asU64()
                  << ", recorded " << events->at("recorded").asU64()
                  << ", dropped " << events->at("dropped").asU64()
                  << " (sampling 1/"
                  << events->at("sample_every").asU64() << ", cap "
                  << events->at("max_events").asU64() << ")\n";
        const JsonValue &agreement = events->at("agreement");
        const std::uint64_t known =
            agreement.at("with_oracle").asU64();
        if (known > 0) {
            std::cout << "oracle agreement  "
                      << agreement.at("agreeing").asU64() << "/"
                      << known << "\n";
        }
    }
}

void
renderSuite(const JsonValue &doc)
{
    TextTable t({"workload", "status", "cycles", "ipc", "miss%",
                 "conflict%"});
    for (const JsonValue &row : doc.at("rows").elements()) {
        std::size_t r = t.addRow(row.at("workload").asString());
        if (const JsonValue *err = row.get("error")) {
            t.set(r, 1, "ERROR");
            t.set(r, 2, "-");
            t.set(r, 3, "-");
            t.set(r, 4, "-");
            t.set(r, 5, "-");
            (void)err;
            continue;
        }
        const JsonValue &derived = row.at("mem").at("derived");
        t.set(r, 1, "ok");
        t.set(r, 2, u64str(row.at("sim").at("cycles")));
        t.set(r, 3, num(row.at("sim").at("ipc").asDouble(), 3));
        t.set(r, 4, num(derived.at("miss_rate_pct").asDouble()));
        t.set(r, 5, num(derived.at("conflict_share_pct").asDouble()));
    }
    t.print(std::cout);

    const JsonValue &summary = doc.at("summary");
    std::cout << summary.at("runs").asU64() -
                     summary.at("errored").asU64()
              << "/" << summary.at("runs").asU64() << " runs ok, "
              << summary.at("errored").asU64() << " errored\n";

    for (const JsonValue &row : doc.at("rows").elements()) {
        if (const JsonValue *err = row.get("error"))
            CCM_LOG_ERROR(row.at("workload").asString(), ": ",
                          err->asString());
    }
}

void
renderClassifyBody(const JsonValue &doc, std::size_t top_n)
{
    const JsonValue &cls = doc.at("classify");
    std::cout << "references        " << cls.at("references").asU64()
              << "\n"
              << "L1 misses         " << cls.at("misses").asU64()
              << "\n";
    // The rest of the body (mem/heatmap/intervals) is shared with
    // kind:"run"; renderRunBody skips the absent sim section.
    renderRunBody(doc, top_n);
}

void
renderClassifySuite(const JsonValue &doc)
{
    TextTable t({"workload", "status", "refs", "miss%", "conflict%",
                 "wall ms", "Mrec/s"});
    for (const JsonValue &row : doc.at("rows").elements()) {
        std::size_t r = t.addRow(row.at("workload").asString());
        if (row.get("error") != nullptr) {
            t.set(r, 1, "ERROR");
            for (std::size_t c = 2; c <= 6; ++c)
                t.set(r, c, "-");
            continue;
        }
        const JsonValue &derived = row.at("mem").at("derived");
        t.set(r, 1, "ok");
        t.set(r, 2, u64str(row.at("classify").at("references")));
        t.set(r, 3, num(derived.at("miss_rate_pct").asDouble()));
        t.set(r, 4, num(derived.at("conflict_share_pct").asDouble()));
        t.set(r, 5,
              num(row.at("wall_seconds").asDouble() * 1e3, 1));
        const JsonValue *rps = row.get("records_per_sec");
        t.set(r, 6,
              rps != nullptr ? num(rps->asDouble() / 1e6, 1)
                             : std::string("-"));
    }
    t.print(std::cout);

    const JsonValue &summary = doc.at("summary");
    std::cout << summary.at("runs").asU64() -
                     summary.at("errored").asU64()
              << "/" << summary.at("runs").asU64() << " runs ok, "
              << summary.at("errored").asU64() << " errored\n";

    for (const JsonValue &row : doc.at("rows").elements()) {
        if (const JsonValue *err = row.get("error"))
            CCM_LOG_ERROR(row.at("workload").asString(), ": ",
                          err->asString());
    }
}

void
renderServe(const JsonValue &doc)
{
    const JsonValue &daemon = doc.at("daemon");
    std::cout << "generation        " << daemon.at("generation").asU64()
              << (daemon.at("draining").asBool() ? " (draining)" : "")
              << "\n"
              << "streams           "
              << daemon.at("streams_total").asU64() << " admitted, "
              << daemon.at("streams_active").asU64() << " active, "
              << daemon.at("streams_done").asU64() << " done, "
              << daemon.at("streams_failed").asU64() << " failed\n"
              << "records           "
              << daemon.at("records_total").asU64() << "\n";

    TextTable t({"stream", "state", "records", "refs", "miss%",
                 "defects"});
    for (const JsonValue &s : doc.at("streams").elements()) {
        std::size_t r = t.addRow(s.at("name").asString());
        t.set(r, 1, s.at("state").asString());
        t.set(r, 2, u64str(s.at("records")));
        t.set(r, 3, u64str(s.at("refs")));
        const JsonValue *mem = s.get("mem");
        if (!mem)
            mem = s.get("mem_live");
        t.set(r, 4,
              mem != nullptr
                  ? num(mem->at("derived")
                            .at("miss_rate_pct")
                            .asDouble())
                  : std::string("-"));
        const JsonValue &frames = s.at("frames");
        const std::uint64_t defects =
            frames.at("malformed_frames").asU64() +
            frames.at("resync_events").asU64() +
            frames.at("bad_records").asU64();
        t.set(r, 5, std::to_string(defects));
    }
    t.print(std::cout);

    for (const JsonValue &s : doc.at("streams").elements()) {
        if (const JsonValue *err = s.get("error"))
            CCM_LOG_ERROR(s.at("name").asString(), ": ",
                          err->asString());
    }
}

void
renderBench(const JsonValue &doc)
{
    const JsonValue &table = doc.at("table");
    const JsonValue &headers = table.at("headers");
    std::vector<std::string> head;
    for (const JsonValue &h : headers.elements())
        head.push_back(h.asString());
    TextTable t(head);
    for (const JsonValue &row : table.at("rows").elements()) {
        std::vector<std::string> cells;
        for (const JsonValue &c : row.elements())
            cells.push_back(c.asString());
        if (cells.empty())
            continue;
        std::size_t r = t.addRow(cells[0]);
        for (std::size_t c = 1; c < cells.size(); ++c)
            t.set(r, c, cells[c]);
    }
    t.print(std::cout);
    if (const JsonValue *note = doc.get("note")) {
        if (note->isString() && !note->asString().empty())
            std::cout << note->asString() << "\n";
    }
}

/** Human form of a byte capacity (power-of-two grid values). */
std::string
capStr(std::uint64_t bytes)
{
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        return std::to_string(bytes / (1024 * 1024)) + "MB";
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "KB";
    return std::to_string(bytes) + "B";
}

void
renderSample(const JsonValue &doc)
{
    const JsonValue &sampling = doc.at("sampling");
    std::cout << "sampling rate     "
              << num(sampling.at("rate_final").asDouble() * 100.0, 3)
              << "% (" << sampling.at("variant").asString()
              << ", seed " << sampling.at("seed").asU64() << ")\n"
              << "references        "
              << sampling.at("sampled_refs").asU64() << " sampled of "
              << sampling.at("total_refs").asU64() << " ("
              << sampling.at("lines_sampled").asU64()
              << " distinct lines)\n";

    std::cout << "\n-- miss-ratio curve --\n";
    const bool exact = doc.get("error") != nullptr;
    TextTable mrc(exact ? std::vector<std::string>{"capacity",
                                                   "miss ratio",
                                                   "exact", "abs err"}
                        : std::vector<std::string>{"capacity",
                                                   "miss ratio"});
    for (const JsonValue &p : doc.at("mrc").at("points").elements()) {
        std::size_t r =
            mrc.addRow(capStr(p.at("capacity_bytes").asU64()));
        mrc.set(r, 1, num(p.at("miss_ratio").asDouble(), 4));
        if (exact) {
            mrc.set(r, 2, num(p.at("exact_miss_ratio").asDouble(), 4));
            mrc.set(r, 3, num(p.at("abs_error").asDouble(), 4));
        }
    }
    mrc.print(std::cout);

    const JsonValue &rec = doc.at("recommendation");
    std::cout << "\nrecommendation    buf=" << rec.at("buf_entries").asU64()
              << " " << rec.at("rationale").asString() << "\n";

    if (const JsonValue *ivl = doc.get("intervals")) {
        std::cout << "\n-- representative intervals ("
                  << ivl->at("clusters").asU64() << " of "
                  << ivl->at("windows").asU64() << " windows of "
                  << ivl->at("window_refs").asU64() << " refs, "
                  << num(ivl->at("confidence").asDouble() * 100.0, 0)
                  << "% confidence) --\n";
        TextTable reps({"window", "weight", "members", "refs"});
        for (const JsonValue &w :
             ivl->at("representatives").elements()) {
            std::size_t r = reps.addRow(
                u64str(w.at("first_ref")) + "-" +
                u64str(w.at("last_ref")));
            reps.set(r, 1, num(w.at("weight").asDouble(), 3));
            reps.set(r, 2, u64str(w.at("cluster_size")));
            reps.set(r, 3, u64str(w.at("refs")));
        }
        reps.print(std::cout);

        std::cout << "\n-- reconstructed stats --\n";
        TextTable st(exact
                         ? std::vector<std::string>{"stat",
                                                    "predicted",
                                                    "+/-", "exact",
                                                    "abs err"}
                         : std::vector<std::string>{"stat",
                                                    "predicted",
                                                    "+/-"});
        for (const JsonValue &s : ivl->at("stats").elements()) {
            // Skip the always-zero timing-only counters.
            if (s.at("predicted").asDouble() == 0.0 &&
                (!exact || s.at("exact").asU64() == 0))
                continue;
            std::size_t r = st.addRow(s.at("name").asString());
            st.set(r, 1, num(s.at("predicted").asDouble(), 0));
            st.set(r, 2, num(s.at("error_bar").asDouble(), 0));
            if (exact) {
                st.set(r, 3, u64str(s.at("exact")));
                st.set(r, 4, num(s.at("abs_error").asDouble(), 0));
            }
        }
        st.print(std::cout);
    }

    if (const JsonValue *err = doc.get("error")) {
        std::cout << "\nMRC error         mae "
                  << num(err->at("mrc_mae").asDouble(), 4) << ", max "
                  << num(err->at("mrc_max_error").asDouble(), 4)
                  << "\n";
        if (doc.get("intervals") != nullptr)
            std::cout << "stat error        max "
                      << num(err->at("max_stat_rel_error").asDouble() *
                                 100.0,
                             2)
                      << "% relative\n";
    }
}

void
renderMetrics(const JsonValue &doc)
{
    TextTable t({"metric", "type", "value", "p50", "p95", "p99"});
    for (const JsonValue &m : doc.at("metrics").elements()) {
        std::size_t r = t.addRow(m.at("name").asString());
        const std::string &type = m.at("type").asString();
        t.set(r, 1, type);
        if (type == "histogram") {
            t.set(r, 2,
                  u64str(m.at("count")) + " obs, sum " +
                      u64str(m.at("sum")));
            t.set(r, 3, num(m.at("p50").asDouble(), 1));
            t.set(r, 4, num(m.at("p95").asDouble(), 1));
            t.set(r, 5, num(m.at("p99").asDouble(), 1));
        } else {
            t.set(r, 2,
                  type == "counter"
                      ? u64str(m.at("value"))
                      : std::to_string(m.at("value").asI64()));
            t.set(r, 3, "-");
            t.set(r, 4, "-");
            t.set(r, 5, "-");
        }
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bool check_only = false;
    bool flat = false;
    std::size_t top_n = 8;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--check") {
            check_only = true;
        } else if (a == "--flat") {
            flat = true;
        } else if (a == "--top") {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR("--top needs a value");
                return 1;
            }
            top_n = std::strtoull(argv[++i], nullptr, 10);
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        } else if (path.empty()) {
            path = a;
        } else {
            CCM_LOG_ERROR("only one FILE argument is accepted");
            return 1;
        }
    }
    if (path.empty()) {
        CCM_LOG_ERROR("missing FILE argument");
        usage();
        return 1;
    }

    std::string text;
    if (path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            CCM_LOG_ERROR("cannot open '", path, "'");
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    // Parse failures are input damage (truncated writes, interleaved
    // concurrent writers), not schema violations: exit 1.
    ccm::Expected<JsonValue> parsed = JsonValue::parse(text);
    if (!parsed.ok()) {
        CCM_LOG_ERROR(parsed.status().toString());
        return 1;
    }
    const JsonValue &doc = parsed.value();

    ccm::Status valid = ccm::obs::validateStatsDoc(doc);
    if (!valid.isOk()) {
        CCM_LOG_ERROR(valid.toString());
        return 2;
    }
    if (check_only) {
        std::cout << path << ": valid ccm-stats document (schema v"
                  << doc.at("schema_version").asU64() << ")\n";
        return 0;
    }
    if (flat) {
        ccm::obs::writeDocument(std::cout, doc,
                                ccm::obs::StatsFormat::Text);
        return 0;
    }

    const std::string &kind = doc.at("kind").asString();
    std::string arch = doc.at("arch").isString()
                           ? doc.at("arch").asString()
                           : std::string("?");
    if (kind == "run") {
        std::cout << "== ccm-report: "
                  << doc.at("workload").asString() << " on " << arch
                  << " (run) ==\n";
        renderRunBody(doc, top_n);
    } else if (kind == "serve") {
        const JsonValue &daemon = doc.at("daemon");
        std::cout << "== ccm-report: ccm-serve on "
                  << daemon.at("arch").asString() << " ==\n";
        renderServe(doc);
    } else if (kind == "suite") {
        std::cout << "== ccm-report: suite on " << arch << " ==\n";
        renderSuite(doc);
    } else if (kind == "classify") {
        std::cout << "== ccm-report: "
                  << doc.at("workload").asString() << " on " << arch
                  << " (classify) ==\n";
        renderClassifyBody(doc, top_n);
    } else if (kind == "classify-suite") {
        std::cout << "== ccm-report: classify suite on " << arch
                  << " ==\n";
        renderClassifySuite(doc);
    } else if (kind == "bench") {
        std::cout << "== ccm-report: bench "
                  << doc.at("bench").asString() << " ==\n";
        renderBench(doc);
    } else if (kind == "sample") {
        std::cout << "== ccm-report: "
                  << doc.at("workload").asString() << " on " << arch
                  << " (sample) ==\n";
        renderSample(doc);
    } else if (kind == "metrics") {
        std::cout << "== ccm-report: metrics ==\n";
        renderMetrics(doc);
    } else {
        // validateStatsDoc rejects unknown kinds, so this is a new
        // kind this renderer predates: say so rather than guessing.
        CCM_LOG_ERROR("no renderer for document kind '", kind,
                      "' (try --flat)");
        return 2;
    }
    return 0;
}
