/**
 * @file
 * ccm-sim — command-line driver for the simulator: run any workload
 * (synthetic or a binary trace file) against any architecture from
 * paper §5 and print a full statistics report.
 *
 *   ccm-sim --workload tomcatv --arch victim --filter-swaps
 *   ccm-sim --trace foo.bin --arch amb --victim --prefetch --exclude
 *   ccm-sim --workload gcc --arch exclude --exclude-algo mat
 *   ccm-sim --suite --arch victim
 *   ccm-sim --suite --trace-dir traces/ --arch baseline
 *   ccm-sim --list
 *
 * Suite mode sweeps the whole workload suite with per-run failure
 * isolation: a corrupt trace or failing run becomes an ERROR row and
 * the remaining runs still complete.
 *
 * Exit status 0 on success, 1 on usage errors, 2 when a suite sweep
 * finished with one or more errored rows.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "hierarchy/memsys.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "obs/sink.hh"
#include "obs/span.hh"
#include "sample/engine.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/sharded.hh"
#include "trace/file_trace.hh"
#include "trace/mmap_trace.hh"
#include "trace/vector_trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace ccm;

struct Options
{
    std::string workload = "tomcatv";
    std::string tracePath;
    std::string arch = "baseline";
    std::size_t refs = 1'000'000;
    std::uint64_t seed = 42;

    // suite sweep
    bool suite = false;
    std::string traceDir;
    std::size_t budget = 0;
    bool tolerateTruncation = false;
    std::size_t jobs = 1; ///< suite workers; 0 = hardware threads

    // classify fast path (no timing model)
    bool classify = false;
    unsigned shards = 1; ///< set-index shards per classify run
    unsigned mctDepth = 1;

    // cache geometry
    std::size_t l1Kb = 16;
    unsigned l1Assoc = 1;
    std::size_t l2Kb = 1024;
    unsigned bufEntries = 8;
    unsigned mctTagBits = 0;

    // victim policy
    bool filterSwaps = false;
    bool filterFills = false;
    std::string filter = "or";

    // prefetch policy
    bool prefFiltered = false;
    std::string prefKind = "nextline";

    // exclusion policy
    std::string excludeAlgo = "capacity";

    // AMB composition
    bool ambVictim = false;
    bool ambPrefetch = false;
    bool ambExclude = false;

    bool dumpRaw = false;

    // statistical sampling engine (src/sample)
    double sampleRate = 0.0;         ///< SHARDS rate; 0 = off
    std::size_t sampleIntervals = 0; ///< representative windows K
    bool sampleExact = false;        ///< also run exact references
    bool autoSize = false;           ///< MRC-sized suite geometry

    // structured stats output
    std::string statsOut;
    std::string traceSpans;
    obs::StatsFormat statsFormat = obs::StatsFormat::Json;
    std::size_t interval = 0;     ///< refs per sample; 0 = off
    std::size_t traceEvents = 0;  ///< max recorded events; 0 = off
};

/**
 * Observability state for one run: an interval sampler and/or an MCT
 * event trace, attached to the machine right before it runs.
 */
struct RunObservers
{
    std::unique_ptr<obs::IntervalSampler> sampler;
    std::unique_ptr<obs::ClassifyEventTrace> events;

    void
    attach(MemorySystem &mem)
    {
        obs::IntervalSampler *sp = sampler.get();
        obs::ClassifyEventTrace *ev = events.get();
        if (sp || ev) {
            mem.setAccessHook(
                [sp, ev](const AccessResult &, const MemStats &st) {
                    // Fires after each completed access, so an event
                    // raised during reference k carries ref k-1 (the
                    // count of references completed before it).
                    if (ev)
                        ev->noteReference();
                    if (sp)
                        sp->onAccess(st);
                });
        }
        if (ev)
            mem.mct().setLookupHook(ev->hook());
    }

    /** Flush the sampler's final window against the run's end state. */
    void
    finish(const MemStats &final_stats)
    {
        if (sampler)
            sampler->finish(final_stats);
    }
};

RunObservers
makeObservers(const Options &o)
{
    RunObservers obsv;
    if (o.interval > 0)
        obsv.sampler = std::make_unique<obs::IntervalSampler>(o.interval);
    if (o.traceEvents > 0) {
        obs::EventTraceOptions topt;
        topt.maxEvents = o.traceEvents;
        obsv.events = std::make_unique<obs::ClassifyEventTrace>(topt);
    }
    return obsv;
}

/** Write @p doc per the --stats-* options; returns the exit code. */
int
emitStatsDoc(const Options &o, obs::JsonValue doc)
{
    if (o.statsOut.empty())
        return 0;
    Status s =
        obs::writeDocumentToFile(o.statsOut, doc, o.statsFormat);
    if (!s.isOk()) {
        CCM_LOG_ERROR(s.toString());
        return 1;
    }
    return 0;
}

void
usage()
{
    std::cout <<
        "usage: ccm-sim [options]\n"
        "  --list                     list synthetic workloads\n"
        "  --workload NAME            synthetic workload (default "
        "tomcatv)\n"
        "  --trace PATH               binary trace file instead\n"
        "  --suite                    sweep the whole suite; failed\n"
        "                             runs become ERROR rows\n"
        "  --trace-dir DIR            suite traces from DIR/NAME.bin\n"
        "  --budget N                 tolerate N garbage runs per "
        "trace\n"
        "  --tolerate-truncation      truncated tail = end of trace\n"
        "  --classify                 cache+MCT classification only\n"
        "                             (no timing model); composes with\n"
        "                             --suite, --trace, --shards\n"
        "  --mct-depth N              evicted tags per set (default 1)\n"
        "\n"
        "parallelism (two independent knobs):\n"
        "  --jobs N                   timing suite only: run suite\n"
        "                             rows on N worker threads\n"
        "                             (default 1; 0 = one per hardware\n"
        "                             thread); output is byte-identical\n"
        "                             for every N\n"
        "  --shards N                 classify runs only: partition the\n"
        "                             set-index space across N workers\n"
        "                             within each run (default 1);\n"
        "                             output is byte-identical for\n"
        "                             every N.  A classify suite runs\n"
        "                             its rows sequentially, each row\n"
        "                             sharded N ways\n"
        "\n"
        "  --refs N                   memory references (default 1M)\n"
        "  --seed N                   workload seed (default 42)\n"
        "  --arch A                   baseline | victim | prefetch |\n"
        "                             exclude | pseudo | pseudo-lru |\n"
        "                             twoway | amb\n"
        "  --l1-kb N --l1-assoc N     L1 geometry (default 16, 1)\n"
        "  --l2-kb N                  L2 size (default 1024)\n"
        "  --buf-entries N            assist buffer entries\n"
        "  --mct-bits N               stored tag bits (0 = full)\n"
        "  --filter F                 in | out | and | or\n"
        "  --filter-swaps             victim: no swap on conflict\n"
        "  --filter-fills             victim: no fill on capacity\n"
        "  --pref-filtered            prefetch: capacity-only\n"
        "  --pref-kind K              nextline | rpt\n"
        "  --exclude-algo A           mat | tyson | capacity |\n"
        "                             conflict | cap-hist | conf-hist\n"
        "  --victim --prefetch --exclude   AMB components\n"
        "  --raw                      also dump raw counters\n"
        "\n"
        "statistical sampling (requires --classify; docs/PERFORMANCE"
        ".md):\n"
        "  --sample-rate R            SHARDS-sampled analysis at rate\n"
        "                             R in (0,1] (e.g. 0.01): one\n"
        "                             cheap pass emits a miss-ratio\n"
        "                             curve + geometry recommendation\n"
        "                             as a kind:\"sample\" document\n"
        "  --sample-intervals K       also pick K representative\n"
        "                             windows, replay only those, and\n"
        "                             reconstruct whole-trace stats\n"
        "                             with error bars\n"
        "  --sample-exact             additionally run the exact\n"
        "                             references and report errors\n"
        "  --auto-size                timing suite only: size each\n"
        "                             workload's assist geometry from\n"
        "                             a sampled MRC pass before the\n"
        "                             sweep (EXPERIMENTS.md recipe)\n"
        "  --stats-json FILE          write a ccm-stats JSON document\n"
        "                             (\"-\" = stdout)\n"
        "  --stats-out FILE           like --stats-json, but honours\n"
        "                             --stats-format\n"
        "  --stats-format F           text | json | csv (default json)\n"
        "  --interval N               sample delta-counters every N\n"
        "                             refs into the stats document\n"
        "  --trace-events N           record up to N MCT lookup events\n"
        "                             into the stats document\n"
        "  --trace-spans FILE         write a Chrome trace-event JSON\n"
        "                             of run/row spans on exit\n"
        "  --log-level L              trace|debug|info|warn|error|off\n"
        "                             (default $CCM_LOG_LEVEL or "
        "info)\n";
}

ConflictFilter
parseFilter(const std::string &f)
{
    if (f == "in")
        return ConflictFilter::In;
    if (f == "out")
        return ConflictFilter::Out;
    if (f == "and")
        return ConflictFilter::And;
    if (f == "or")
        return ConflictFilter::Or;
    CCM_LOG_ERROR("unknown filter '", f, "'");
    std::exit(1);
}

ExcludeAlgo
parseExcludeAlgo(const std::string &a)
{
    if (a == "mat")
        return ExcludeAlgo::Mat;
    if (a == "tyson")
        return ExcludeAlgo::TysonPc;
    if (a == "capacity")
        return ExcludeAlgo::Capacity;
    if (a == "conflict")
        return ExcludeAlgo::Conflict;
    if (a == "cap-hist")
        return ExcludeAlgo::CapacityHistory;
    if (a == "conf-hist")
        return ExcludeAlgo::ConflictHistory;
    CCM_LOG_ERROR("unknown exclusion algorithm '", a, "'");
    std::exit(1);
}

SystemConfig
buildConfig(const Options &o)
{
    SystemConfig cfg;
    if (o.arch == "baseline") {
        cfg = baselineConfig();
    } else if (o.arch == "victim") {
        cfg = victimConfig(o.filterSwaps, o.filterFills,
                           parseFilter(o.filter));
    } else if (o.arch == "prefetch") {
        cfg = prefetchConfig(o.prefFiltered, parseFilter(o.filter));
        cfg.mem.prefetch.kind = o.prefKind == "rpt"
                                    ? PrefetchKind::Rpt
                                    : PrefetchKind::NextLine;
    } else if (o.arch == "exclude") {
        cfg = excludeConfig(parseExcludeAlgo(o.excludeAlgo));
    } else if (o.arch == "pseudo") {
        cfg = pseudoConfig(true);
    } else if (o.arch == "pseudo-lru") {
        cfg = pseudoConfig(false);
    } else if (o.arch == "twoway") {
        cfg = twoWayConfig();
    } else if (o.arch == "amb") {
        cfg = ambConfig(o.ambVictim, o.ambPrefetch, o.ambExclude);
    } else {
        CCM_LOG_ERROR("unknown arch '", o.arch, "'");
        std::exit(1);
    }

    cfg.mem.l1Bytes = o.l1Kb * 1024;
    if (o.arch == "twoway")
        cfg.mem.l1Assoc = 2;
    else if (o.arch != "pseudo" && o.arch != "pseudo-lru")
        cfg.mem.l1Assoc = o.l1Assoc;
    cfg.mem.l2Bytes = o.l2Kb * 1024;
    cfg.mem.bufEntries = o.bufEntries;
    cfg.mem.mctTagBits = o.mctTagBits;
    return cfg;
}

int
runSuiteMode(const Options &o)
{
    obs::ScopedSpan span("suite:" + o.arch, "sim");
    SystemConfig cfg = buildConfig(o);

    TraceReadOptions ropts;
    ropts.corruptionBudget = o.budget;
    ropts.tolerateTruncatedTail = o.tolerateTruncation;

    auto factory = [&](const std::string &name)
        -> Expected<std::unique_ptr<TraceSource>> {
        if (o.traceDir.empty())
            return makeWorkloadChecked(name, o.refs, o.seed);
        std::string path = o.traceDir + "/" + name + ".bin";
        auto rd = TraceFileReader::open(path, ropts);
        if (!rd.ok())
            return rd.status();
        return std::unique_ptr<TraceSource>(rd.take().release());
    };

    // Per-workload interval samplers, attached as each machine is
    // built and finished against that run's final counters below.
    std::map<std::string, std::unique_ptr<obs::IntervalSampler>>
        samplers;
    SuiteInstrument instrument;
    if (o.interval > 0) {
        instrument = [&](const std::string &name, MemorySystem &mem) {
            auto sp = std::make_unique<obs::IntervalSampler>(o.interval);
            obs::IntervalSampler *raw = sp.get();
            mem.setAccessHook(
                [raw](const AccessResult &, const MemStats &st) {
                    raw->onAccess(st);
                });
            samplers[name] = std::move(sp);
        };
    }

    // The instrument body mutates the shared sampler map; the runner
    // serializes instrument calls (parallel.hh contract point 1), so
    // this needs no locking even under --jobs N.
    ParallelSuiteOptions popts;
    popts.jobs = o.jobs;
    popts.instrument = instrument;

    // --auto-size: one cheap SHARDS pass per workload sizes its
    // assist geometry before the sweep (src/sample/recommend.hh).
    // A workload whose sizing pass fails just runs the base config;
    // the real run will surface any real trace problem as its row.
    std::map<std::string, SystemConfig> sized;
    if (o.autoSize) {
        obs::ScopedSpan sizing("auto-size", "sample");
        for (const auto &name : workloadNames()) {
            auto tr = factory(name);
            if (!tr.ok())
                continue;
            VectorTrace captured = VectorTrace::capture(*tr.value());
            sample::MrcConfig mcfg;
            mcfg.rate = o.sampleRate > 0.0 ? o.sampleRate : 0.01;
            mcfg.seed = o.seed;
            auto mrc = sample::buildMrc(captured.records().data(),
                                        captured.records().size(),
                                        mcfg);
            if (!mrc.ok()) {
                CCM_LOG_WARN("auto-size ", name, ": ",
                             mrc.status().toString());
                continue;
            }
            sample::GeometryRecommendation rec =
                sample::recommendGeometry(mrc.value(),
                                          cfg.mem.l1Bytes);
            CCM_LOG_INFO("auto-size ", name, ": ", rec.rationale);
            sized[name] = sample::applyRecommendation(cfg, rec);
        }
        popts.configFor = [&sized](const std::string &name,
                                   const SystemConfig &base) {
            auto it = sized.find(name);
            return it != sized.end() ? it->second : base;
        };
    }

    SuiteReport report =
        runSuiteParallel(workloadNames(), factory, cfg, popts);
    for (const auto &row : report.rows) {
        auto it = samplers.find(row.workload);
        if (it != samplers.end() && row.ok())
            it->second->finish(row.out.mem);
    }

    TextTable table(
        {"workload", "status", "cycles", "ipc", "miss%", "wall ms"});
    for (const auto &row : report.rows) {
        std::size_t r = table.addRow(row.workload);
        if (row.ok()) {
            table.set(r, 1, "ok");
            table.set(r, 2, std::to_string(row.out.sim.cycles));
            table.setNum(r, 3, row.out.sim.ipc);
            table.setNum(r, 4, row.out.mem.missRatePct());
        } else {
            table.set(r, 1,
                      std::string("ERROR[") +
                          errorCodeName(row.status.code()) + "]");
            table.set(r, 2, "-");
            table.set(r, 3, "-");
            table.set(r, 4, "-");
        }
        table.setNum(r, 5, row.wallSeconds * 1000.0, 1);
    }
    std::cout << "== ccm-sim suite: " << o.arch << " (jobs "
              << resolveJobCount(o.jobs) << ") ==\n";
    table.print(std::cout);

    for (const auto &row : report.rows) {
        if (!row.ok())
            CCM_LOG_ERROR(row.status.toString());
    }
    std::cout << report.rows.size() - report.failures() << "/"
              << report.rows.size() << " runs ok, "
              << report.failures() << " errored\n";

    if (!o.statsOut.empty()) {
        obs::JsonValue doc = obs::suiteDocument(
            report,
            [&](const std::string &name) -> const obs::IntervalSampler * {
                auto it = samplers.find(name);
                return it == samplers.end() ? nullptr
                                            : it->second.get();
            });
        doc.set("arch", obs::JsonValue::str(o.arch));
        int rc = emitStatsDoc(o, std::move(doc));
        if (rc != 0)
            return rc;
    }
    return report.allOk() ? 0 : 2;
}

ShardedClassifyConfig
buildClassifyConfig(const Options &o)
{
    ShardedClassifyConfig cfg;
    cfg.cacheBytes = o.l1Kb * 1024;
    cfg.assoc = o.l1Assoc;
    cfg.mctTagBits = o.mctTagBits;
    cfg.mctDepth = o.mctDepth;
    cfg.shards = o.shards;
    cfg.interval = o.interval;
    return cfg;
}

/** Classify-mode trace factory: file (mmap-first) or synthetic. */
Expected<std::unique_ptr<TraceSource>>
openClassifyTrace(const Options &o, const std::string &name)
{
    TraceReadOptions ropts;
    ropts.corruptionBudget = o.budget;
    ropts.tolerateTruncatedTail = o.tolerateTruncation;
    if (!o.traceDir.empty())
        return openTraceMappedOrFile(o.traceDir + "/" + name + ".bin",
                                     ropts);
    if (!o.tracePath.empty())
        return openTraceMappedOrFile(o.tracePath, ropts);
    return makeWorkloadChecked(name, o.refs, o.seed);
}

int
runClassifySuiteMode(const Options &o)
{
    obs::ScopedSpan span("classify-suite", "sim");
    const ShardedClassifyConfig ccfg = buildClassifyConfig(o);

    // Rows run sequentially: --shards already parallelizes within
    // each run, and stacking --jobs on top would just oversubscribe.
    std::vector<obs::ClassifyRow> rows;
    for (const auto &name : workloadNames()) {
        obs::ClassifyRow row;
        row.workload = name;
        const auto start = std::chrono::steady_clock::now();
        auto trace = openClassifyTrace(o, name);
        if (!trace.ok()) {
            row.status = trace.status();
        } else {
            row.out = runShardedClassify(*trace.value(), ccfg);
        }
        row.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        rows.push_back(std::move(row));
    }

    TextTable table({"workload", "status", "refs", "miss%",
                     "conflict%", "wall ms"});
    std::size_t errored = 0;
    for (const auto &row : rows) {
        std::size_t r = table.addRow(row.workload);
        if (row.ok()) {
            table.set(r, 1, "ok");
            table.set(r, 2, std::to_string(row.out.references));
            table.setNum(r, 3, row.out.mem.missRatePct());
            table.setNum(r, 4,
                         pct(row.out.mem.conflictMisses,
                             row.out.mem.l1Misses));
        } else {
            table.set(r, 1,
                      std::string("ERROR[") +
                          errorCodeName(row.status.code()) + "]");
            table.set(r, 2, "-");
            table.set(r, 3, "-");
            table.set(r, 4, "-");
            ++errored;
        }
        table.setNum(r, 5, row.wallSeconds * 1000.0, 1);
    }
    std::cout << "== ccm-sim classify suite (shards "
              << (o.shards == 0 ? 1U : o.shards) << ") ==\n";
    table.print(std::cout);
    for (const auto &row : rows) {
        if (!row.ok())
            CCM_LOG_ERROR(row.status.toString());
    }
    std::cout << rows.size() - errored << "/" << rows.size()
              << " runs ok, " << errored << " errored\n";

    if (!o.statsOut.empty()) {
        obs::JsonValue doc = obs::classifySuiteDocument(rows);
        doc.set("arch", obs::JsonValue::str(o.arch));
        int rc = emitStatsDoc(o, std::move(doc));
        if (rc != 0)
            return rc;
    }
    return errored == 0 ? 0 : 2;
}

/** --classify --sample-rate/--sample-intervals: sampled analysis. */
int
runSampleMode(const Options &o)
{
    obs::ScopedSpan span("sample:" + o.workload, "sim");
    auto trace = openClassifyTrace(o, o.workload);
    if (!trace.ok()) {
        CCM_LOG_ERROR(trace.status().toString());
        return 1;
    }
    VectorTrace captured = VectorTrace::capture(*trace.value());

    sample::SampleRunConfig scfg;
    scfg.mrc.rate = o.sampleRate > 0.0 ? o.sampleRate : 0.01;
    scfg.mrc.seed = o.seed;
    scfg.intervals = o.sampleIntervals;
    scfg.classify = buildClassifyConfig(o);
    scfg.compareExact = o.sampleExact;

    auto rep = sample::runSampleAnalysis(captured.records().data(),
                                         captured.records().size(),
                                         scfg);
    if (!rep.ok()) {
        CCM_LOG_ERROR(rep.status().toString());
        return 1;
    }
    const sample::SampleReport &r = rep.value();

    std::cout << "== ccm-sim sample: " << trace.value()->name()
              << " ==\n"
              << "sampling rate     " << r.mrc.finalRate * 100.0
              << "% (" << sample::toString(r.mrc.variant) << ")\n"
              << "references        " << r.mrc.sampledRefs
              << " sampled of " << r.mrc.totalRefs << "\n"
              << "lines sampled     " << r.mrc.linesSampled << "\n\n"
              << "capacity    miss ratio\n";
    for (const sample::MrcPoint &p : r.mrc.points)
        std::cout << p.capacityBytes / 1024 << "KB\t    "
                  << p.missRatio << "\n";
    std::cout << "\nrecommendation    "
              << r.recommendation.rationale << "\n";
    if (r.hasIntervals) {
        std::cout << "intervals         " << r.intervals.clusters
                  << " of " << r.intervals.windows
                  << " windows replayed (" << r.intervals.replayedRefs
                  << " of " << r.intervals.totalRefs << " refs)\n";
        const sample::StatEstimate *miss =
            r.intervals.find("l1_misses");
        if (miss != nullptr)
            std::cout << "predicted misses  " << miss->predicted
                      << " +/- " << miss->errorBar << "\n";
    }
    if (r.hasExact) {
        std::cout << "MRC error         mae " << r.mrcMae << ", max "
                  << r.mrcMaxError << "\n";
        if (r.hasIntervals)
            std::cout << "stat error        max "
                      << r.maxStatRelError * 100.0 << "% relative\n";
    }

    if (!o.statsOut.empty()) {
        obs::JsonValue doc =
            obs::sampleDocument(trace.value()->name(), r);
        doc.set("arch", obs::JsonValue::str(o.arch));
        return emitStatsDoc(o, std::move(doc));
    }
    return 0;
}

int
runClassifyMode(const Options &o)
{
    if (!o.suite && o.traceDir.empty() && o.tracePath.empty() &&
        !makeWorkload(o.workload, 1, o.seed)) {
        CCM_LOG_ERROR("unknown workload '", o.workload,
                      "' (try --list)");
        return 1;
    }
    if (o.suite)
        return runClassifySuiteMode(o);
    if (o.sampleRate > 0.0 || o.sampleIntervals > 0)
        return runSampleMode(o);

    obs::ScopedSpan span("classify:" + o.workload, "sim");
    auto trace = openClassifyTrace(o, o.workload);
    if (!trace.ok()) {
        CCM_LOG_ERROR(trace.status().toString());
        return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    ShardedClassifyResult res =
        runShardedClassify(*trace.value(), buildClassifyConfig(o));
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    const MemStats &m = res.mem;
    std::cout << "== ccm-sim classify: " << trace.value()->name()
              << " ==\n"
              << "memory refs       " << res.references << "\n"
              << "L1 misses         " << res.misses << "\n"
              << "miss rate         " << m.missRatePct() << "%\n"
              << "conflict misses   " << m.conflictMisses << " ("
              << pct(m.conflictMisses, m.l1Misses)
              << "% of L1 misses)\n"
              << "capacity misses   " << m.capacityMisses << "\n"
              << "shards            " << res.shards << "\n"
              << "records/sec       "
              << (wall > 0.0
                      ? static_cast<std::uint64_t>(
                            static_cast<double>(res.references) / wall)
                      : 0)
              << "\n";
    if (o.dumpRaw) {
        std::cout << "\n";
        m.dump(std::cout);
    }

    if (!o.statsOut.empty()) {
        obs::JsonValue doc =
            obs::classifyDocument(trace.value()->name(), res);
        doc.set("arch", obs::JsonValue::str(o.arch));
        return emitStatsDoc(o, std::move(doc));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                CCM_LOG_ERROR(a, " needs a value");
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            for (const auto &n : workloadNames())
                std::cout << n << "\n";
            return 0;
        } else if (a == "--workload") {
            o.workload = val();
        } else if (a == "--trace") {
            o.tracePath = val();
        } else if (a == "--suite") {
            o.suite = true;
        } else if (a == "--trace-dir") {
            o.traceDir = val();
        } else if (a == "--budget") {
            o.budget = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--tolerate-truncation") {
            o.tolerateTruncation = true;
        } else if (a == "--jobs") {
            o.jobs = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--classify") {
            o.classify = true;
        } else if (a == "--shards") {
            o.shards = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--mct-depth") {
            o.mctDepth = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--refs") {
            o.refs = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--arch") {
            o.arch = val();
        } else if (a == "--l1-kb") {
            o.l1Kb = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--l1-assoc") {
            o.l1Assoc = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--l2-kb") {
            o.l2Kb = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--buf-entries") {
            o.bufEntries = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--mct-bits") {
            o.mctTagBits = static_cast<unsigned>(
                std::strtoul(val().c_str(), nullptr, 10));
        } else if (a == "--filter") {
            o.filter = val();
        } else if (a == "--filter-swaps") {
            o.filterSwaps = true;
        } else if (a == "--filter-fills") {
            o.filterFills = true;
        } else if (a == "--pref-filtered") {
            o.prefFiltered = true;
        } else if (a == "--pref-kind") {
            o.prefKind = val();
        } else if (a == "--exclude-algo") {
            o.excludeAlgo = val();
        } else if (a == "--victim") {
            o.ambVictim = true;
        } else if (a == "--prefetch") {
            o.ambPrefetch = true;
        } else if (a == "--exclude") {
            o.ambExclude = true;
        } else if (a == "--raw") {
            o.dumpRaw = true;
        } else if (a == "--sample-rate") {
            o.sampleRate = std::strtod(val().c_str(), nullptr);
        } else if (a == "--sample-intervals") {
            o.sampleIntervals =
                std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--sample-exact") {
            o.sampleExact = true;
        } else if (a == "--auto-size") {
            o.autoSize = true;
        } else if (a == "--stats-json" || a == "--stats-out") {
            // One stats document per invocation: silently honouring
            // only the last of two different targets would leave the
            // other file stale without anyone noticing.
            const std::string target = val();
            if (!o.statsOut.empty() && o.statsOut != target) {
                CCM_LOG_ERROR(
                    ccm::Status::badConfig(
                        "conflicting stats targets '", o.statsOut,
                        "' and '", target,
                        "' (use one --stats-json/--stats-out "
                        "destination)")
                        .toString());
                return 1;
            }
            o.statsOut = target;
            if (a == "--stats-json")
                o.statsFormat = ccm::obs::StatsFormat::Json;
        } else if (a == "--stats-format") {
            auto f = ccm::obs::parseStatsFormat(val());
            if (!f.ok()) {
                CCM_LOG_ERROR(f.status().toString());
                return 1;
            }
            o.statsFormat = f.value();
        } else if (a == "--interval") {
            o.interval = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--trace-events") {
            o.traceEvents = std::strtoull(val().c_str(), nullptr, 10);
        } else if (a == "--trace-spans") {
            o.traceSpans = val();
        } else if (a == "--log-level") {
            auto lvl = ccm::parseLogLevel(val());
            if (!lvl.ok()) {
                CCM_LOG_ERROR(lvl.status().toString());
                return 1;
            }
            ccm::setLogThreshold(lvl.value());
        } else {
            CCM_LOG_ERROR("unknown option '", a, "'");
            usage();
            return 1;
        }
    }

    using namespace ccm;

    if (!o.traceSpans.empty()) {
        Status ts = obs::SpanTracer::global().enableToFile(o.traceSpans);
        if (!ts.isOk()) {
            CCM_LOG_ERROR(ts.toString());
            return 1;
        }
    }

    // --shards parallelizes the classify pipeline only: the timing
    // model couples sets (MSHRs, bus contention) and cannot shard.
    if (o.shards != 1 && !o.classify) {
        CCM_LOG_ERROR(Status::badConfig(
                          "--shards requires --classify (the timing "
                          "model cannot be sharded; use --jobs for "
                          "suite-level parallelism)")
                          .toString());
        return 1;
    }
    if (o.classify && o.traceEvents > 0) {
        CCM_LOG_ERROR(Status::badConfig(
                          "--trace-events is not supported in "
                          "--classify mode")
                          .toString());
        return 1;
    }
    if ((o.sampleRate > 0.0 || o.sampleIntervals > 0) &&
        (!o.classify || o.suite)) {
        CCM_LOG_ERROR(Status::badConfig(
                          "--sample-rate/--sample-intervals require "
                          "--classify on a single workload (use "
                          "ccm-sample for richer sweeps)")
                          .toString());
        return 1;
    }
    if (o.autoSize && (!o.suite || o.classify)) {
        CCM_LOG_ERROR(Status::badConfig(
                          "--auto-size requires the timing suite "
                          "(--suite without --classify)")
                          .toString());
        return 1;
    }

    if (o.classify) {
        const int rc = runClassifyMode(o);
        Status fs = obs::SpanTracer::global().flush();
        if (!fs.isOk())
            CCM_LOG_ERROR(fs.toString());
        return rc;
    }

    if (o.suite) {
        const int rc = runSuiteMode(o);
        Status fs = obs::SpanTracer::global().flush();
        if (!fs.isOk())
            CCM_LOG_ERROR(fs.toString());
        return rc;
    }

    std::unique_ptr<TraceSource> src;
    if (!o.tracePath.empty()) {
        src = std::make_unique<TraceFileReader>(o.tracePath);
    } else {
        src = makeWorkload(o.workload, o.refs, o.seed);
        if (!src) {
            CCM_LOG_ERROR("unknown workload '", o.workload,
                          "' (try --list)");
            return 1;
        }
    }

    SystemConfig cfg = buildConfig(o);
    RunObservers obsv = makeObservers(o);
    RunOutput r = [&] {
        obs::ScopedSpan span("run:" + src->name(), "sim");
        return runTiming(*src, cfg, [&](MemorySystem &mem) {
            obsv.attach(mem);
        });
    }();
    obsv.finish(r.mem);
    const MemStats &m = r.mem;

    std::cout << "== ccm-sim: " << src->name() << " on " << o.arch
              << " ==\n"
              << "instructions      " << r.sim.instructions << "\n"
              << "memory refs       " << r.sim.memRefs << "\n"
              << "cycles            " << r.sim.cycles << "\n"
              << "ipc               " << r.sim.ipc << "\n\n"
              << "L1 hit rate       " << m.l1HitRatePct() << "%\n"
              << "buffer hit rate   " << m.bufHitRatePct() << "%\n"
              << "total hit rate    " << m.totalHitRatePct() << "%\n"
              << "miss rate         " << m.missRatePct() << "%\n"
              << "conflict misses   " << m.conflictMisses << " ("
              << pct(m.conflictMisses, m.l1Misses)
              << "% of L1 misses)\n"
              << "capacity misses   " << m.capacityMisses << "\n";
    if (m.swaps || m.victimFills)
        std::cout << "swaps/fills       " << m.swapRatePct() << "% / "
                  << m.fillRatePct() << "% of accesses\n";
    if (m.prefIssued)
        std::cout << "prefetch acc/cov  " << m.prefAccuracyPct()
                  << "% / " << m.prefCoveragePct() << "%\n";
    if (m.excluded)
        std::cout << "excluded lines    " << m.excluded << "\n";
    if (m.pseudoSecondaryHits)
        std::cout << "pseudo 1st/2nd    " << m.pseudoPrimaryHits
                  << " / " << m.pseudoSecondaryHits << "\n";

    if (o.dumpRaw) {
        std::cout << "\n";
        m.dump(std::cout);
    }

    int rc = 0;
    if (!o.statsOut.empty()) {
        obs::JsonValue doc = obs::runDocument(
            src->name(), r, obsv.sampler.get(), obsv.events.get());
        doc.set("arch", obs::JsonValue::str(o.arch));
        rc = emitStatsDoc(o, std::move(doc));
    }
    Status fs = obs::SpanTracer::global().flush();
    if (!fs.isOk())
        CCM_LOG_ERROR(fs.toString());
    return rc;
}
