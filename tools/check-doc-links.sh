#!/usr/bin/env bash
# check-doc-links.sh — fail on dead relative links in the doc tree.
#
# Scans every *.md in the repo (excluding build trees and .git) for
# markdown links `[text](target)`, strips #anchors, skips absolute
# URLs (http/https/mailto) and pure in-page anchors, and resolves the
# rest relative to the file that contains them.  Any target that does
# not exist on disk is reported and the script exits 1.
#
# Usage: tools/check-doc-links.sh [root]

set -euo pipefail

root=${1:-$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)}
cd "$root"

fail=0
checked=0

while IFS= read -r -d '' md; do
    dir=$(dirname "$md")
    # Pull out every (...) target of an inline markdown link.  The
    # pattern deliberately ignores reference-style links and images
    # pointed at URLs; everything the repo uses is inline.
    while IFS= read -r target; do
        # Strip surrounding whitespace and any "title" suffix.
        target=${target%% *}
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
            '#'*) continue ;; # in-page anchor
        esac
        path=${target%%#*} # drop anchor suffix
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "dead link: $md -> $target" >&2
            fail=1
        fi
    done < <(awk '/^```/ { fence = !fence; next } !fence' "$md" |
        grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')
done < <(find . \( -name 'build*' -o -name '.git' \) -prune -o \
    -name '*.md' -print0)

if [ "$fail" -ne 0 ]; then
    echo "check-doc-links: FAILED" >&2
    exit 1
fi
echo "check-doc-links: $checked relative links OK"
