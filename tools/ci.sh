#!/usr/bin/env bash
# ci.sh — the full local gate, exactly what a CI runner executes.
#
#   1. tier-1 verify: default preset build + full ctest suite
#   2. strict build: tidy preset (CCM_WERROR=ON, compile_commands)
#   3. sanitize build: ASan+UBSan preset + full ctest suite
#   4. tsan: ThreadSanitizer build of the parallel-runner tests
#   5. static analysis: tools/ccm-lint (clang-tidy when available)
#   6. doc links: tools/check-doc-links.sh over the markdown tree
#   7. observability smoke: ccm-sim --stats-json on a tiny suite run,
#      validated and rendered by ccm-report; --jobs 2 must produce a
#      stats document identical to --jobs 1 modulo wall-time fields
#   8. perf smoke: the micro_throughput hotpath table (writes
#      BENCH_hotpath.json for comparison against bench/baselines/),
#      plus batching determinism: a suite run with CCM_TRACE_BATCH=1
#      (record-at-a-time delivery) must be byte-identical to the
#      default batched run
#
# Fails on the first nonzero step.  Usage: tools/ci.sh [-j N]

set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
    jobs=$2
fi

step() {
    echo
    echo "==== ci: $* ===================================================="
}

step "tier-1 verify (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

step "strict-warning build (tidy preset, CCM_WERROR=ON)"
cmake --preset tidy
cmake --build --preset tidy -j "$jobs"

step "sanitizer build + tests (sanitize preset)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$jobs"
ctest --preset sanitize -j "$jobs"

step "thread-sanitizer build + parallel-runner tests (tsan preset)"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target test_parallel
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_parallel

step "static analysis (ccm-lint)"
tools/ccm-lint --build-dir "$repo_root/build-tidy" -j "$jobs"

step "doc link check"
tools/check-doc-links.sh

step "observability smoke (ccm-sim --stats-json | ccm-report --check)"
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
build/tools/ccm-sim --suite --refs 5000 --arch victim \
    --interval 1000 --stats-json "$obs_tmp/suite.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/suite.json"
build/tools/ccm-report "$obs_tmp/suite.json" > /dev/null

# Parallel determinism: the suite document at --jobs 2 must match
# --jobs 1 byte for byte once the wall-time fields are stripped.
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/seq.json" > /dev/null
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 2 \
    --stats-json "$obs_tmp/par.json" > /dev/null
diff <(grep -v wall_seconds "$obs_tmp/seq.json") \
     <(grep -v wall_seconds "$obs_tmp/par.json")
build/tools/ccm-sim --workload go --refs 5000 --arch baseline \
    --interval 1000 --trace-events 64 \
    --stats-json "$obs_tmp/run.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/run.json"
build/tools/ccm-report "$obs_tmp/run.json" > /dev/null

step "perf smoke (micro_throughput hotpath table)"
CCM_BENCH_JSON_DIR="$obs_tmp" build/bench/micro_throughput \
    --hotpath-only
test -s "$obs_tmp/BENCH_hotpath.json"

# Batching determinism: batched delivery must not change a single
# simulated byte.  CCM_TRACE_BATCH=1 restores record-at-a-time pulls;
# its suite document must equal the default batched one exactly
# (modulo wall time).
step "batched vs unbatched determinism"
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/batched.json" > /dev/null
CCM_TRACE_BATCH=1 \
    build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/unbatched.json" > /dev/null
if ! diff <(grep -v wall_seconds "$obs_tmp/batched.json") \
          <(grep -v wall_seconds "$obs_tmp/unbatched.json"); then
    echo "FAIL: batched simulation output differs from unbatched" >&2
    exit 1
fi

step "all green"
