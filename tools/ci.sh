#!/usr/bin/env bash
# ci.sh — the full local gate, exactly what a CI runner executes.
#
#   1. tier-1 verify: default preset build + full ctest suite
#   2. strict build: tidy preset (CCM_WERROR=ON, compile_commands)
#   3. sanitize build: ASan+UBSan preset + full ctest suite
#   4. static analysis: tools/ccm-lint (clang-tidy when available)
#   5. observability smoke: ccm-sim --stats-json on a tiny suite run,
#      validated and rendered by ccm-report
#
# Fails on the first nonzero step.  Usage: tools/ci.sh [-j N]

set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
    jobs=$2
fi

step() {
    echo
    echo "==== ci: $* ===================================================="
}

step "tier-1 verify (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

step "strict-warning build (tidy preset, CCM_WERROR=ON)"
cmake --preset tidy
cmake --build --preset tidy -j "$jobs"

step "sanitizer build + tests (sanitize preset)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$jobs"
ctest --preset sanitize -j "$jobs"

step "static analysis (ccm-lint)"
tools/ccm-lint --build-dir "$repo_root/build-tidy" -j "$jobs"

step "observability smoke (ccm-sim --stats-json | ccm-report --check)"
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
build/tools/ccm-sim --suite --refs 5000 --arch victim \
    --interval 1000 --stats-json "$obs_tmp/suite.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/suite.json"
build/tools/ccm-report "$obs_tmp/suite.json" > /dev/null
build/tools/ccm-sim --workload go --refs 5000 --arch baseline \
    --interval 1000 --trace-events 64 \
    --stats-json "$obs_tmp/run.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/run.json"
build/tools/ccm-report "$obs_tmp/run.json" > /dev/null

step "all green"
