#!/usr/bin/env bash
# ci.sh — the full local gate, exactly what a CI runner executes.
#
#   1. tier-1 verify: default preset build + full ctest suite
#   2. strict build: tidy preset (CCM_WERROR=ON, compile_commands)
#   3. thread-safety analysis: Clang build with -Wthread-safety and
#      -Werror=thread-safety-analysis over the annotated locking
#      layer (docs/STATIC_ANALYSIS.md "Concurrency contracts");
#      SKIPPED with a notice when no clang++ is installed
#   4. sanitize build: ASan+UBSan preset + full ctest suite
#   5. tsan: ThreadSanitizer build of the parallel-runner,
#      serve-daemon, common (sync/shutdown/log), metrics-registry,
#      and sharded-classification tests
#   6. static analysis: tools/ccm-lint (sync-primitive ban always;
#      clang-tidy when available)
#   7. doc links: tools/check-doc-links.sh over the markdown tree
#   8. observability smoke: ccm-sim --stats-json on a tiny suite run,
#      validated and rendered by ccm-report; --jobs 2 must produce a
#      stats document identical to --jobs 1 modulo wall-time fields;
#      the sharded classify engine (--classify --suite --shards 4)
#      must produce a stats document byte-identical to --shards 1
#   9. perf smoke: the micro_throughput hotpath table (writes
#      BENCH_hotpath.json for comparison against bench/baselines/,
#      which must carry the classify_sharded_e2e and mmap_ingest
#      records/sec rows), plus batching determinism: a suite run with
#      CCM_TRACE_BATCH=1 (record-at-a-time delivery) must be
#      byte-identical to the default batched run
#  10. serve smoke: ccm-serve with three concurrent producers, one of
#      them wire-corrupted; the live stats document must validate,
#      the clean streams must match batch ccm-sim byte for byte, and
#      a SIGTERM drain must exit 0 (docs/SERVING.md).  The telemetry
#      plane is scraped mid-run: Prometheus text via the `metrics`
#      command, `metrics json` validated by ccm-report, and a
#      ccm-top --once snapshot
#  11. telemetry smoke: suite stats must stay byte-identical with
#      span tracing on (telemetry is strictly observational), the
#      span file must be well-formed, and bench/telemetry_overhead
#      must hold the classify hot-path overhead under its 2% budget
#
# Fails on the first nonzero step.  Steps that need a tool the
# container lacks are skipped, not failed, and listed in the summary
# footer so a green run on a partial toolchain is visibly partial.
# Usage: tools/ci.sh [-j N]

set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
    jobs=$2
fi

step() {
    echo
    echo "==== ci: $* ===================================================="
}

skipped_steps=()
skip() {
    skipped_steps+=("$1")
    echo "ci: SKIPPED $1 ($2)"
}

step "tier-1 verify (default preset)"
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

step "strict-warning build (tidy preset, CCM_WERROR=ON)"
cmake --preset tidy
cmake --build --preset tidy -j "$jobs"

step "thread-safety analysis (clang, -Werror=thread-safety-analysis)"
# The capability annotations in src/common/sync.hh only bite under
# Clang; on a GCC-only container the macros expand to nothing and
# this step is skipped (the annotations still compile, which the
# strict build above proves).  CMakeLists.txt appends -Wthread-safety
# -Werror=thread-safety-analysis to CCM_STRICT_WARNINGS whenever the
# compiler is Clang, so a plain CCM_WERROR build is the gate.
if command -v clang++ >/dev/null 2>&1; then
    cmake -S . -B build-tsa -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER=clang++ -DCCM_WERROR=ON
    cmake --build build-tsa -j "$jobs"
else
    skip "thread-safety analysis" "clang++ not installed"
fi

step "sanitizer build + tests (sanitize preset)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$jobs"
ctest --preset sanitize -j "$jobs"

step "thread-sanitizer build + concurrency tests (tsan preset)"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target test_parallel \
    --target test_serve --target test_common --target test_obs \
    --target test_sharded
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_parallel
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_serve
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_common
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_obs \
    --gtest_filter='ObsMetrics.*:ObsSpan.*'
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    build-tsan/tests/test_sharded \
    --gtest_filter='ShardedClassify.*'

step "static analysis (ccm-lint)"
tools/ccm-lint --build-dir "$repo_root/build-tidy" -j "$jobs"

step "doc link check"
tools/check-doc-links.sh

step "observability smoke (ccm-sim --stats-json | ccm-report --check)"
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
build/tools/ccm-sim --suite --refs 5000 --arch victim \
    --interval 1000 --stats-json "$obs_tmp/suite.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/suite.json"
build/tools/ccm-report "$obs_tmp/suite.json" > /dev/null

# Parallel determinism: the suite document at --jobs 2 must match
# --jobs 1 byte for byte once the wall-time fields are stripped.
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/seq.json" > /dev/null
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 2 \
    --stats-json "$obs_tmp/par.json" > /dev/null
diff <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/seq.json") \
     <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/par.json")
build/tools/ccm-sim --workload go --refs 5000 --arch baseline \
    --interval 1000 --trace-events 64 \
    --stats-json "$obs_tmp/run.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/run.json"
build/tools/ccm-report "$obs_tmp/run.json" > /dev/null

step "sharded classify determinism (--shards 4 vs --shards 1)"
# The set-sharded engine must not change a single byte of the stats
# document for any shard count (docs/PERFORMANCE.md "Sharding
# semantics"); wall_seconds is the one sanctioned difference.
build/tools/ccm-sim --classify --suite --refs 5000 --interval 1000 \
    --shards 1 --stats-json "$obs_tmp/classify_s1.json" > /dev/null
build/tools/ccm-sim --classify --suite --refs 5000 --interval 1000 \
    --shards 4 --stats-json "$obs_tmp/classify_s4.json" > /dev/null
if ! diff <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/classify_s1.json") \
          <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/classify_s4.json"); then
    echo "FAIL: sharded classify output differs from sequential" >&2
    exit 1
fi
build/tools/ccm-report --check "$obs_tmp/classify_s1.json"
build/tools/ccm-report "$obs_tmp/classify_s1.json" > /dev/null

step "sampling smoke + determinism (kind:\"sample\" document)"
# The sampled classify path must emit a valid kind:"sample" document,
# render cleanly, and be byte-deterministic (modulo wall time) — the
# SHARDS predicate and the k-means interval selection are seeded.
build/tools/ccm-sim --workload tomcatv --refs 20000 --classify \
    --sample-rate 0.05 --sample-intervals 3 \
    --stats-json "$obs_tmp/sample_a.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/sample_a.json"
build/tools/ccm-report "$obs_tmp/sample_a.json" > /dev/null
build/tools/ccm-sim --workload tomcatv --refs 20000 --classify \
    --sample-rate 0.05 --sample-intervals 3 \
    --stats-json "$obs_tmp/sample_b.json" > /dev/null
diff <(grep -v wall_seconds "$obs_tmp/sample_a.json") \
     <(grep -v wall_seconds "$obs_tmp/sample_b.json")
# The ccm-sample CLI end to end, including the error columns.
build/tools/ccm-sample --workload gcc --refs 20000 --rate 0.05 \
    --intervals 3 --exact \
    --stats-out "$obs_tmp/sample_cli.json" > /dev/null
build/tools/ccm-report --check "$obs_tmp/sample_cli.json"

step "sampling accuracy gate (bench/sampling_accuracy --gate-only)"
# 1% SHARDS pass + 12-interval reconstruction on the full 16-workload
# suite at 8M references; fails when any workload's MRC mean absolute
# error exceeds 0.02 or any reconstructed tier-1 stat is off by more
# than 5% (the wall-clock sweep columns are skipped — speedup numbers
# live in bench/baselines/BENCH_sampling.json).
build/bench/sampling_accuracy --gate-only

step "perf smoke (micro_throughput hotpath table)"
CCM_BENCH_JSON_DIR="$obs_tmp" build/bench/micro_throughput \
    --hotpath-only
test -s "$obs_tmp/BENCH_hotpath.json"
# The raw-speed rows must be present: an end-to-end records/sec
# number for the sharded classify engine and for mmap ingestion.
grep -q '"classify_sharded_e2e"' "$obs_tmp/BENCH_hotpath.json"
grep -q '"mmap_ingest"' "$obs_tmp/BENCH_hotpath.json"

# Batching determinism: batched delivery must not change a single
# simulated byte.  CCM_TRACE_BATCH=1 restores record-at-a-time pulls;
# its suite document must equal the default batched one exactly
# (modulo wall time).
step "batched vs unbatched determinism"
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/batched.json" > /dev/null
CCM_TRACE_BATCH=1 \
    build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --stats-json "$obs_tmp/unbatched.json" > /dev/null
if ! diff <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/batched.json") \
          <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/unbatched.json"); then
    echo "FAIL: batched simulation output differs from unbatched" >&2
    exit 1
fi

step "serve smoke (ccm-serve + concurrent producers + drain)"
serve_sock="$obs_tmp/ing.sock"
serve_ctl="$obs_tmp/ctl.sock"
build/tools/ccm-serve --socket "$serve_sock" --control "$serve_ctl" \
    --stats-out "$obs_tmp/serve_final.json" &
serve_pid=$!
for _ in $(seq 50); do
    if build/tools/ccm-stream --control "$serve_ctl" --cmd ping \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.1
done

build/tools/ccm-stream --socket "$serve_sock" --name clean-1 \
    --workload tomcatv --refs 20000 &
producer1=$!
build/tools/ccm-stream --socket "$serve_sock" --name clean-2 \
    --workload gcc --refs 20000 &
producer2=$!
# Wire corruption past the defect budget: the daemon cuts this
# connection mid-stream, so the producer is allowed to fail.
build/tools/ccm-stream --socket "$serve_sock" --name corrupt-1 \
    --workload swim --refs 20000 --corrupt-after 5000 || true
wait "$producer1" "$producer2"

# The live stats document must validate once all three streams have
# retired: two served to completion, the corrupted one failed.
for _ in $(seq 100); do
    build/tools/ccm-stream --control "$serve_ctl" --cmd stats \
        > "$obs_tmp/serve_live.json"
    if grep -q '"streams_active": 0' "$obs_tmp/serve_live.json" &&
        grep -q '"streams_total": 3' "$obs_tmp/serve_live.json"; then
        break
    fi
    sleep 0.1
done
build/tools/ccm-report --check "$obs_tmp/serve_live.json"
grep -q '"streams_done": 2' "$obs_tmp/serve_live.json"
grep -q '"streams_failed": 1' "$obs_tmp/serve_live.json"

# Telemetry plane, scraped live from the same daemon: Prometheus
# text, the kind:"metrics" JSON document, and a ccm-top snapshot.
build/tools/ccm-stream --control "$serve_ctl" --cmd metrics \
    > "$obs_tmp/serve_metrics.txt"
grep -q '^ccm_serve_streams_admitted_total 3' \
    "$obs_tmp/serve_metrics.txt"
grep -q '^# TYPE ccm_serve_batch_classify_us histogram' \
    "$obs_tmp/serve_metrics.txt"
build/tools/ccm-stream --control "$serve_ctl" --cmd 'metrics json' \
    > "$obs_tmp/serve_metrics.json"
build/tools/ccm-report --check "$obs_tmp/serve_metrics.json"
build/tools/ccm-report "$obs_tmp/serve_metrics.json" > /dev/null
build/tools/ccm-top --control "$serve_ctl" --once \
    > "$obs_tmp/serve_top.txt"
grep -q '^records_total ' "$obs_tmp/serve_top.txt"
grep -q '^config_generation 1' "$obs_tmp/serve_top.txt"
# The sampling instruments are pre-registered at startup, so the
# scrape and the dashboard must carry them even before any MRC pass.
grep -q '^ccm_sample_lines_sampled_total 0' \
    "$obs_tmp/serve_metrics.txt"
grep -q '^sample_lines_total 0' "$obs_tmp/serve_top.txt"
grep -q '^sample_rate_ppm 0' "$obs_tmp/serve_top.txt"

# Fault isolation, byte for byte: the clean streams' mem sections
# must equal a batch ccm-sim run of the same trace exactly.
build/tools/ccm-sim --workload tomcatv --refs 20000 \
    --stats-json "$obs_tmp/serve_batch.json" > /dev/null
build/tools/ccm-report --flat "$obs_tmp/serve_live.json" \
    > "$obs_tmp/serve_flat.txt"
idx=$(awk '$2 == "clean-1" && $1 ~ /^streams\.[0-9]+\.name$/ \
        {split($1, a, "."); print a[2]; exit}' \
    "$obs_tmp/serve_flat.txt")
test -n "$idx"
grep "^streams\.$idx\.mem\." "$obs_tmp/serve_flat.txt" |
    sed "s/^streams\.$idx\.//" | sort > "$obs_tmp/served_mem.txt"
build/tools/ccm-report --flat "$obs_tmp/serve_batch.json" |
    grep '^mem\.' | sort > "$obs_tmp/batch_mem.txt"
diff "$obs_tmp/served_mem.txt" "$obs_tmp/batch_mem.txt"

# Graceful drain: SIGTERM must exit 0 and leave a valid final doc.
kill -TERM "$serve_pid"
wait "$serve_pid"
build/tools/ccm-report --check "$obs_tmp/serve_final.json"

step "telemetry smoke (span tracing + overhead budget)"
# Spans on must not change a single byte of the stats document (the
# seq.json reference was produced without tracing above).
build/tools/ccm-sim --suite --refs 5000 --arch victim --jobs 1 \
    --trace-spans "$obs_tmp/spans.json" \
    --stats-json "$obs_tmp/traced.json" > /dev/null
diff <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/seq.json") \
     <(grep -v -e wall_seconds -e records_per_sec "$obs_tmp/traced.json")
test -s "$obs_tmp/spans.json"
grep -q '"traceEvents"' "$obs_tmp/spans.json"
grep -q '"ph": "X"' "$obs_tmp/spans.json"

# The enforced < 2% classify hot-path budget: the bench exits 1 on a
# breach, and the JSON record must land for baseline diffing.
CCM_BENCH_JSON_DIR="$obs_tmp" build/bench/telemetry_overhead
test -s "$obs_tmp/BENCH_telemetry.json"
build/tools/ccm-report --check "$obs_tmp/BENCH_telemetry.json"

step "all green"
if [ ${#skipped_steps[@]} -gt 0 ]; then
    echo "ci: NOTE — ${#skipped_steps[@]} step(s) skipped on this" \
         "toolchain:"
    for s in "${skipped_steps[@]}"; do
        echo "ci:   - $s"
    done
else
    echo "ci: no steps skipped"
fi
