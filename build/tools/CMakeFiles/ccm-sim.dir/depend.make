# Empty dependencies file for ccm-sim.
# This may be replaced when dependencies are built.
