file(REMOVE_RECURSE
  "CMakeFiles/ccm-sim.dir/ccm_sim.cc.o"
  "CMakeFiles/ccm-sim.dir/ccm_sim.cc.o.d"
  "ccm-sim"
  "ccm-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
