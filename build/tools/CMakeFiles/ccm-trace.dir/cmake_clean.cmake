file(REMOVE_RECURSE
  "CMakeFiles/ccm-trace.dir/ccm_trace.cc.o"
  "CMakeFiles/ccm-trace.dir/ccm_trace.cc.o.d"
  "ccm-trace"
  "ccm-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
