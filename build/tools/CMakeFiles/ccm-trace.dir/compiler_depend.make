# Empty compiler generated dependencies file for ccm-trace.
# This may be replaced when dependencies are built.
