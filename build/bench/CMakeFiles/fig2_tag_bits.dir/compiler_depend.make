# Empty compiler generated dependencies file for fig2_tag_bits.
# This may be replaced when dependencies are built.
