file(REMOVE_RECURSE
  "CMakeFiles/fig2_tag_bits.dir/fig2_tag_bits.cc.o"
  "CMakeFiles/fig2_tag_bits.dir/fig2_tag_bits.cc.o.d"
  "fig2_tag_bits"
  "fig2_tag_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tag_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
