# Empty dependencies file for sec56_assoc_bias.
# This may be replaced when dependencies are built.
