file(REMOVE_RECURSE
  "CMakeFiles/sec56_assoc_bias.dir/sec56_assoc_bias.cc.o"
  "CMakeFiles/sec56_assoc_bias.dir/sec56_assoc_bias.cc.o.d"
  "sec56_assoc_bias"
  "sec56_assoc_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_assoc_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
