
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_victim_rates.cc" "bench/CMakeFiles/table1_victim_rates.dir/table1_victim_rates.cc.o" "gcc" "bench/CMakeFiles/table1_victim_rates.dir/table1_victim_rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ccm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/ccm_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/assist/CMakeFiles/ccm_assist.dir/DependInfo.cmake"
  "/root/repo/build/src/exclude/CMakeFiles/ccm_exclude.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/ccm_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/pseudo/CMakeFiles/ccm_pseudo.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/ccm_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ccm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
