# Empty compiler generated dependencies file for table1_victim_rates.
# This may be replaced when dependencies are built.
