# Empty dependencies file for ablation_rpt_prefetch.
# This may be replaced when dependencies are built.
