file(REMOVE_RECURSE
  "CMakeFiles/ablation_rpt_prefetch.dir/ablation_rpt_prefetch.cc.o"
  "CMakeFiles/ablation_rpt_prefetch.dir/ablation_rpt_prefetch.cc.o.d"
  "ablation_rpt_prefetch"
  "ablation_rpt_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rpt_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
