file(REMOVE_RECURSE
  "CMakeFiles/sec54_pseudo_assoc.dir/sec54_pseudo_assoc.cc.o"
  "CMakeFiles/sec54_pseudo_assoc.dir/sec54_pseudo_assoc.cc.o.d"
  "sec54_pseudo_assoc"
  "sec54_pseudo_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_pseudo_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
