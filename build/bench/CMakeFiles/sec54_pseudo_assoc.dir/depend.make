# Empty dependencies file for sec54_pseudo_assoc.
# This may be replaced when dependencies are built.
