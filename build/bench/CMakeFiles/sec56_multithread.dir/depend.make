# Empty dependencies file for sec56_multithread.
# This may be replaced when dependencies are built.
