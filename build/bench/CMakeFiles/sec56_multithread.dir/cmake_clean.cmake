file(REMOVE_RECURSE
  "CMakeFiles/sec56_multithread.dir/sec56_multithread.cc.o"
  "CMakeFiles/sec56_multithread.dir/sec56_multithread.cc.o.d"
  "sec56_multithread"
  "sec56_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
