file(REMOVE_RECURSE
  "CMakeFiles/ablation_mct_depth.dir/ablation_mct_depth.cc.o"
  "CMakeFiles/ablation_mct_depth.dir/ablation_mct_depth.cc.o.d"
  "ablation_mct_depth"
  "ablation_mct_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mct_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
