# Empty dependencies file for ablation_mct_depth.
# This may be replaced when dependencies are built.
