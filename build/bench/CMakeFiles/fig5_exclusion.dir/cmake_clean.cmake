file(REMOVE_RECURSE
  "CMakeFiles/fig5_exclusion.dir/fig5_exclusion.cc.o"
  "CMakeFiles/fig5_exclusion.dir/fig5_exclusion.cc.o.d"
  "fig5_exclusion"
  "fig5_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
