# Empty dependencies file for fig5_exclusion.
# This may be replaced when dependencies are built.
