# Empty compiler generated dependencies file for fig6_amb.
# This may be replaced when dependencies are built.
