file(REMOVE_RECURSE
  "CMakeFiles/fig6_amb.dir/fig6_amb.cc.o"
  "CMakeFiles/fig6_amb.dir/fig6_amb.cc.o.d"
  "fig6_amb"
  "fig6_amb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_amb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
