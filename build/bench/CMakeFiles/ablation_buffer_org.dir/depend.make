# Empty dependencies file for ablation_buffer_org.
# This may be replaced when dependencies are built.
