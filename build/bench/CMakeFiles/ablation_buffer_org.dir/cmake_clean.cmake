file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_org.dir/ablation_buffer_org.cc.o"
  "CMakeFiles/ablation_buffer_org.dir/ablation_buffer_org.cc.o.d"
  "ablation_buffer_org"
  "ablation_buffer_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
