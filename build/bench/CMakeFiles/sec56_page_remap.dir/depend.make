# Empty dependencies file for sec56_page_remap.
# This may be replaced when dependencies are built.
