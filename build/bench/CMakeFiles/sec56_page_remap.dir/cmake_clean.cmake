file(REMOVE_RECURSE
  "CMakeFiles/sec56_page_remap.dir/sec56_page_remap.cc.o"
  "CMakeFiles/sec56_page_remap.dir/sec56_page_remap.cc.o.d"
  "sec56_page_remap"
  "sec56_page_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_page_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
