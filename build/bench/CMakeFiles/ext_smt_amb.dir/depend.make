# Empty dependencies file for ext_smt_amb.
# This may be replaced when dependencies are built.
