file(REMOVE_RECURSE
  "CMakeFiles/ext_smt_amb.dir/ext_smt_amb.cc.o"
  "CMakeFiles/ext_smt_amb.dir/ext_smt_amb.cc.o.d"
  "ext_smt_amb"
  "ext_smt_amb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smt_amb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
