file(REMOVE_RECURSE
  "CMakeFiles/fig7_amb_hit_components.dir/fig7_amb_hit_components.cc.o"
  "CMakeFiles/fig7_amb_hit_components.dir/fig7_amb_hit_components.cc.o.d"
  "fig7_amb_hit_components"
  "fig7_amb_hit_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_amb_hit_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
