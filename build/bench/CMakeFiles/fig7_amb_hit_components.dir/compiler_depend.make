# Empty compiler generated dependencies file for fig7_amb_hit_components.
# This may be replaced when dependencies are built.
