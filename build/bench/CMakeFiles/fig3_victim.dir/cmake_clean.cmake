file(REMOVE_RECURSE
  "CMakeFiles/fig3_victim.dir/fig3_victim.cc.o"
  "CMakeFiles/fig3_victim.dir/fig3_victim.cc.o.d"
  "fig3_victim"
  "fig3_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
