# Empty dependencies file for fig3_victim.
# This may be replaced when dependencies are built.
