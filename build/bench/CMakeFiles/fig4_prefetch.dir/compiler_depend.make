# Empty compiler generated dependencies file for fig4_prefetch.
# This may be replaced when dependencies are built.
