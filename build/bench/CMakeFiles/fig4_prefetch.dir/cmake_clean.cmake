file(REMOVE_RECURSE
  "CMakeFiles/fig4_prefetch.dir/fig4_prefetch.cc.o"
  "CMakeFiles/fig4_prefetch.dir/fig4_prefetch.cc.o.d"
  "fig4_prefetch"
  "fig4_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
