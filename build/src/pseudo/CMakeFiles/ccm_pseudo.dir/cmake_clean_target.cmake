file(REMOVE_RECURSE
  "libccm_pseudo.a"
)
