file(REMOVE_RECURSE
  "CMakeFiles/ccm_pseudo.dir/pseudo_cache.cc.o"
  "CMakeFiles/ccm_pseudo.dir/pseudo_cache.cc.o.d"
  "libccm_pseudo.a"
  "libccm_pseudo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_pseudo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
