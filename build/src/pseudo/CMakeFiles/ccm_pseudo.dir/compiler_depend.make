# Empty compiler generated dependencies file for ccm_pseudo.
# This may be replaced when dependencies are built.
