# Empty compiler generated dependencies file for ccm_cpu.
# This may be replaced when dependencies are built.
