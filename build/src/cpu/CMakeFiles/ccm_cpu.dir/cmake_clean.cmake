file(REMOVE_RECURSE
  "CMakeFiles/ccm_cpu.dir/core.cc.o"
  "CMakeFiles/ccm_cpu.dir/core.cc.o.d"
  "CMakeFiles/ccm_cpu.dir/smt_core.cc.o"
  "CMakeFiles/ccm_cpu.dir/smt_core.cc.o.d"
  "libccm_cpu.a"
  "libccm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
