file(REMOVE_RECURSE
  "libccm_cpu.a"
)
