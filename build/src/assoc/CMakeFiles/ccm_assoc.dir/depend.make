# Empty dependencies file for ccm_assoc.
# This may be replaced when dependencies are built.
