file(REMOVE_RECURSE
  "CMakeFiles/ccm_assoc.dir/biased_cache.cc.o"
  "CMakeFiles/ccm_assoc.dir/biased_cache.cc.o.d"
  "libccm_assoc.a"
  "libccm_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
