file(REMOVE_RECURSE
  "libccm_assoc.a"
)
