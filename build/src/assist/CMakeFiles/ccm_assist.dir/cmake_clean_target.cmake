file(REMOVE_RECURSE
  "libccm_assist.a"
)
