file(REMOVE_RECURSE
  "CMakeFiles/ccm_assist.dir/buffer.cc.o"
  "CMakeFiles/ccm_assist.dir/buffer.cc.o.d"
  "libccm_assist.a"
  "libccm_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
