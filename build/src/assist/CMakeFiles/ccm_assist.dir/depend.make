# Empty dependencies file for ccm_assist.
# This may be replaced when dependencies are built.
