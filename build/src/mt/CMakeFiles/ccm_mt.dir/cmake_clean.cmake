file(REMOVE_RECURSE
  "CMakeFiles/ccm_mt.dir/interleave.cc.o"
  "CMakeFiles/ccm_mt.dir/interleave.cc.o.d"
  "CMakeFiles/ccm_mt.dir/shared_cache.cc.o"
  "CMakeFiles/ccm_mt.dir/shared_cache.cc.o.d"
  "libccm_mt.a"
  "libccm_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
