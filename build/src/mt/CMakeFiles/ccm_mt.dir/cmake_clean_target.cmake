file(REMOVE_RECURSE
  "libccm_mt.a"
)
