# Empty compiler generated dependencies file for ccm_mt.
# This may be replaced when dependencies are built.
