# Empty compiler generated dependencies file for ccm_remap.
# This may be replaced when dependencies are built.
