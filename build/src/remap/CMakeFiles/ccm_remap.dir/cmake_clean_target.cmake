file(REMOVE_RECURSE
  "libccm_remap.a"
)
