file(REMOVE_RECURSE
  "CMakeFiles/ccm_remap.dir/cml.cc.o"
  "CMakeFiles/ccm_remap.dir/cml.cc.o.d"
  "CMakeFiles/ccm_remap.dir/remap_sim.cc.o"
  "CMakeFiles/ccm_remap.dir/remap_sim.cc.o.d"
  "libccm_remap.a"
  "libccm_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
