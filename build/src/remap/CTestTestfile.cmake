# CMake generated Testfile for 
# Source directory: /root/repo/src/remap
# Build directory: /root/repo/build/src/remap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
