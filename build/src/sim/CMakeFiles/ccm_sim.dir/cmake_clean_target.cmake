file(REMOVE_RECURSE
  "libccm_sim.a"
)
