# Empty compiler generated dependencies file for ccm_sim.
# This may be replaced when dependencies are built.
