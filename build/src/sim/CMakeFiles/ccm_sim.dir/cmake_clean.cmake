file(REMOVE_RECURSE
  "CMakeFiles/ccm_sim.dir/experiment.cc.o"
  "CMakeFiles/ccm_sim.dir/experiment.cc.o.d"
  "libccm_sim.a"
  "libccm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
