file(REMOVE_RECURSE
  "libccm_prefetch.a"
)
