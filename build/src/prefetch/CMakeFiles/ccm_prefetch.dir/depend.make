# Empty dependencies file for ccm_prefetch.
# This may be replaced when dependencies are built.
