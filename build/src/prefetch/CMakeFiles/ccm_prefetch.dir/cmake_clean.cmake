file(REMOVE_RECURSE
  "CMakeFiles/ccm_prefetch.dir/nextline.cc.o"
  "CMakeFiles/ccm_prefetch.dir/nextline.cc.o.d"
  "CMakeFiles/ccm_prefetch.dir/rpt.cc.o"
  "CMakeFiles/ccm_prefetch.dir/rpt.cc.o.d"
  "libccm_prefetch.a"
  "libccm_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
