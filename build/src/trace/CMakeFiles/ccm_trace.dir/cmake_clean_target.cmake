file(REMOVE_RECURSE
  "libccm_trace.a"
)
