# Empty compiler generated dependencies file for ccm_trace.
# This may be replaced when dependencies are built.
