file(REMOVE_RECURSE
  "CMakeFiles/ccm_trace.dir/file_trace.cc.o"
  "CMakeFiles/ccm_trace.dir/file_trace.cc.o.d"
  "CMakeFiles/ccm_trace.dir/vector_trace.cc.o"
  "CMakeFiles/ccm_trace.dir/vector_trace.cc.o.d"
  "libccm_trace.a"
  "libccm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
