file(REMOVE_RECURSE
  "CMakeFiles/ccm_hierarchy.dir/memsys.cc.o"
  "CMakeFiles/ccm_hierarchy.dir/memsys.cc.o.d"
  "CMakeFiles/ccm_hierarchy.dir/mshr.cc.o"
  "CMakeFiles/ccm_hierarchy.dir/mshr.cc.o.d"
  "libccm_hierarchy.a"
  "libccm_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
