file(REMOVE_RECURSE
  "libccm_hierarchy.a"
)
