# Empty dependencies file for ccm_hierarchy.
# This may be replaced when dependencies are built.
