file(REMOVE_RECURSE
  "CMakeFiles/ccm_cache.dir/cache.cc.o"
  "CMakeFiles/ccm_cache.dir/cache.cc.o.d"
  "CMakeFiles/ccm_cache.dir/fa_lru.cc.o"
  "CMakeFiles/ccm_cache.dir/fa_lru.cc.o.d"
  "CMakeFiles/ccm_cache.dir/geometry.cc.o"
  "CMakeFiles/ccm_cache.dir/geometry.cc.o.d"
  "libccm_cache.a"
  "libccm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
