file(REMOVE_RECURSE
  "libccm_cache.a"
)
