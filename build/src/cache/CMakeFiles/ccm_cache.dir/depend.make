# Empty dependencies file for ccm_cache.
# This may be replaced when dependencies are built.
