# Empty compiler generated dependencies file for ccm_exclude.
# This may be replaced when dependencies are built.
