file(REMOVE_RECURSE
  "libccm_exclude.a"
)
