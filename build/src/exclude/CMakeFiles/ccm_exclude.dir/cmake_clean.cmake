file(REMOVE_RECURSE
  "CMakeFiles/ccm_exclude.dir/history.cc.o"
  "CMakeFiles/ccm_exclude.dir/history.cc.o.d"
  "CMakeFiles/ccm_exclude.dir/mat.cc.o"
  "CMakeFiles/ccm_exclude.dir/mat.cc.o.d"
  "CMakeFiles/ccm_exclude.dir/tyson.cc.o"
  "CMakeFiles/ccm_exclude.dir/tyson.cc.o.d"
  "libccm_exclude.a"
  "libccm_exclude.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_exclude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
