# Empty dependencies file for ccm_mct.
# This may be replaced when dependencies are built.
