file(REMOVE_RECURSE
  "CMakeFiles/ccm_mct.dir/accuracy.cc.o"
  "CMakeFiles/ccm_mct.dir/accuracy.cc.o.d"
  "CMakeFiles/ccm_mct.dir/mct.cc.o"
  "CMakeFiles/ccm_mct.dir/mct.cc.o.d"
  "CMakeFiles/ccm_mct.dir/oracle.cc.o"
  "CMakeFiles/ccm_mct.dir/oracle.cc.o.d"
  "CMakeFiles/ccm_mct.dir/shadow.cc.o"
  "CMakeFiles/ccm_mct.dir/shadow.cc.o.d"
  "libccm_mct.a"
  "libccm_mct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_mct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
