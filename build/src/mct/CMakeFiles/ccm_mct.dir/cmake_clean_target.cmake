file(REMOVE_RECURSE
  "libccm_mct.a"
)
