
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mct/accuracy.cc" "src/mct/CMakeFiles/ccm_mct.dir/accuracy.cc.o" "gcc" "src/mct/CMakeFiles/ccm_mct.dir/accuracy.cc.o.d"
  "/root/repo/src/mct/mct.cc" "src/mct/CMakeFiles/ccm_mct.dir/mct.cc.o" "gcc" "src/mct/CMakeFiles/ccm_mct.dir/mct.cc.o.d"
  "/root/repo/src/mct/oracle.cc" "src/mct/CMakeFiles/ccm_mct.dir/oracle.cc.o" "gcc" "src/mct/CMakeFiles/ccm_mct.dir/oracle.cc.o.d"
  "/root/repo/src/mct/shadow.cc" "src/mct/CMakeFiles/ccm_mct.dir/shadow.cc.o" "gcc" "src/mct/CMakeFiles/ccm_mct.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/ccm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
