# Empty dependencies file for ccm_common.
# This may be replaced when dependencies are built.
