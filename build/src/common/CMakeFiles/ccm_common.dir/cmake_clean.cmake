file(REMOVE_RECURSE
  "CMakeFiles/ccm_common.dir/logging.cc.o"
  "CMakeFiles/ccm_common.dir/logging.cc.o.d"
  "CMakeFiles/ccm_common.dir/stats.cc.o"
  "CMakeFiles/ccm_common.dir/stats.cc.o.d"
  "CMakeFiles/ccm_common.dir/table.cc.o"
  "CMakeFiles/ccm_common.dir/table.cc.o.d"
  "libccm_common.a"
  "libccm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
