file(REMOVE_RECURSE
  "libccm_common.a"
)
