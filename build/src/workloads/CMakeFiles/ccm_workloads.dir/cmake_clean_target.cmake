file(REMOVE_RECURSE
  "libccm_workloads.a"
)
