file(REMOVE_RECURSE
  "CMakeFiles/ccm_workloads.dir/code_stream.cc.o"
  "CMakeFiles/ccm_workloads.dir/code_stream.cc.o.d"
  "CMakeFiles/ccm_workloads.dir/fp_workloads.cc.o"
  "CMakeFiles/ccm_workloads.dir/fp_workloads.cc.o.d"
  "CMakeFiles/ccm_workloads.dir/int_workloads.cc.o"
  "CMakeFiles/ccm_workloads.dir/int_workloads.cc.o.d"
  "CMakeFiles/ccm_workloads.dir/registry.cc.o"
  "CMakeFiles/ccm_workloads.dir/registry.cc.o.d"
  "CMakeFiles/ccm_workloads.dir/synthetic.cc.o"
  "CMakeFiles/ccm_workloads.dir/synthetic.cc.o.d"
  "libccm_workloads.a"
  "libccm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
