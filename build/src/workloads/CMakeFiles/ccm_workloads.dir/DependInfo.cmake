
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/code_stream.cc" "src/workloads/CMakeFiles/ccm_workloads.dir/code_stream.cc.o" "gcc" "src/workloads/CMakeFiles/ccm_workloads.dir/code_stream.cc.o.d"
  "/root/repo/src/workloads/fp_workloads.cc" "src/workloads/CMakeFiles/ccm_workloads.dir/fp_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ccm_workloads.dir/fp_workloads.cc.o.d"
  "/root/repo/src/workloads/int_workloads.cc" "src/workloads/CMakeFiles/ccm_workloads.dir/int_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ccm_workloads.dir/int_workloads.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/ccm_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/ccm_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/ccm_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/ccm_workloads.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ccm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ccm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
