# Empty compiler generated dependencies file for ccm_workloads.
# This may be replaced when dependencies are built.
