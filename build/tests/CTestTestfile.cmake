# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_fa_lru[1]_include.cmake")
include("/root/repo/build/tests/test_mct[1]_include.cmake")
include("/root/repo/build/tests/test_shadow[1]_include.cmake")
include("/root/repo/build/tests/test_assoc[1]_include.cmake")
include("/root/repo/build/tests/test_remap[1]_include.cmake")
include("/root/repo/build/tests/test_mt[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_code_stream[1]_include.cmake")
include("/root/repo/build/tests/test_assist[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_exclude[1]_include.cmake")
include("/root/repo/build/tests/test_pseudo[1]_include.cmake")
include("/root/repo/build/tests/test_mshr[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_memsys_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_smt[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
