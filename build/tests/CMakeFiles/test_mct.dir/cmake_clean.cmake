file(REMOVE_RECURSE
  "CMakeFiles/test_mct.dir/test_mct.cc.o"
  "CMakeFiles/test_mct.dir/test_mct.cc.o.d"
  "test_mct"
  "test_mct.pdb"
  "test_mct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
