file(REMOVE_RECURSE
  "CMakeFiles/test_code_stream.dir/test_code_stream.cc.o"
  "CMakeFiles/test_code_stream.dir/test_code_stream.cc.o.d"
  "test_code_stream"
  "test_code_stream.pdb"
  "test_code_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
