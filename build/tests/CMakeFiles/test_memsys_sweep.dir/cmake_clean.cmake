file(REMOVE_RECURSE
  "CMakeFiles/test_memsys_sweep.dir/test_memsys_sweep.cc.o"
  "CMakeFiles/test_memsys_sweep.dir/test_memsys_sweep.cc.o.d"
  "test_memsys_sweep"
  "test_memsys_sweep.pdb"
  "test_memsys_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsys_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
