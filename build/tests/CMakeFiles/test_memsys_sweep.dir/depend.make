# Empty dependencies file for test_memsys_sweep.
# This may be replaced when dependencies are built.
