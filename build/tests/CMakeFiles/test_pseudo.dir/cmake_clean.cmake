file(REMOVE_RECURSE
  "CMakeFiles/test_pseudo.dir/test_pseudo.cc.o"
  "CMakeFiles/test_pseudo.dir/test_pseudo.cc.o.d"
  "test_pseudo"
  "test_pseudo.pdb"
  "test_pseudo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pseudo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
