file(REMOVE_RECURSE
  "CMakeFiles/test_exclude.dir/test_exclude.cc.o"
  "CMakeFiles/test_exclude.dir/test_exclude.cc.o.d"
  "test_exclude"
  "test_exclude.pdb"
  "test_exclude[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exclude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
