# Empty compiler generated dependencies file for test_exclude.
# This may be replaced when dependencies are built.
