file(REMOVE_RECURSE
  "CMakeFiles/test_assoc.dir/test_assoc.cc.o"
  "CMakeFiles/test_assoc.dir/test_assoc.cc.o.d"
  "test_assoc"
  "test_assoc.pdb"
  "test_assoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
