# Empty dependencies file for test_assoc.
# This may be replaced when dependencies are built.
