file(REMOVE_RECURSE
  "CMakeFiles/test_mt.dir/test_mt.cc.o"
  "CMakeFiles/test_mt.dir/test_mt.cc.o.d"
  "test_mt"
  "test_mt.pdb"
  "test_mt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
