# Empty compiler generated dependencies file for test_fa_lru.
# This may be replaced when dependencies are built.
