file(REMOVE_RECURSE
  "CMakeFiles/test_fa_lru.dir/test_fa_lru.cc.o"
  "CMakeFiles/test_fa_lru.dir/test_fa_lru.cc.o.d"
  "test_fa_lru"
  "test_fa_lru.pdb"
  "test_fa_lru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
