# Empty dependencies file for classify_workload.
# This may be replaced when dependencies are built.
