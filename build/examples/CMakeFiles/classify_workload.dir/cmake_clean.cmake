file(REMOVE_RECURSE
  "CMakeFiles/classify_workload.dir/classify_workload.cpp.o"
  "CMakeFiles/classify_workload.dir/classify_workload.cpp.o.d"
  "classify_workload"
  "classify_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
