file(REMOVE_RECURSE
  "CMakeFiles/victim_filter_tuning.dir/victim_filter_tuning.cpp.o"
  "CMakeFiles/victim_filter_tuning.dir/victim_filter_tuning.cpp.o.d"
  "victim_filter_tuning"
  "victim_filter_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/victim_filter_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
