# Empty compiler generated dependencies file for victim_filter_tuning.
# This may be replaced when dependencies are built.
