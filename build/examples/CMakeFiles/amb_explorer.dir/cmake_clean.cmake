file(REMOVE_RECURSE
  "CMakeFiles/amb_explorer.dir/amb_explorer.cpp.o"
  "CMakeFiles/amb_explorer.dir/amb_explorer.cpp.o.d"
  "amb_explorer"
  "amb_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amb_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
