# Empty dependencies file for amb_explorer.
# This may be replaced when dependencies are built.
