file(REMOVE_RECURSE
  "CMakeFiles/coschedule_advisor.dir/coschedule_advisor.cpp.o"
  "CMakeFiles/coschedule_advisor.dir/coschedule_advisor.cpp.o.d"
  "coschedule_advisor"
  "coschedule_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coschedule_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
