# Empty compiler generated dependencies file for coschedule_advisor.
# This may be replaced when dependencies are built.
